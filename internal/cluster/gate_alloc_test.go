package cluster

import (
	"testing"
	"time"
)

// TestGateAllocFree guards the proxy hot path: once a session has an
// entry, resolving it to a node — whether through the routed pointer or
// through ring fallback — must not allocate. The proxied body is the
// only per-request allocation the router is allowed.
func TestGateAllocFree(t *testing.T) {
	rt, err := New(Config{
		// A black-hole address: the health loop is parked for an hour and
		// nothing in this test sends traffic.
		Nodes:       []string{"127.0.0.1:1", "127.0.0.1:2"},
		HealthEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	routed := "s-00000000000000aa"
	e := &entry{}
	e.node.Store(rt.nodes["127.0.0.1:1"])
	rt.entries.Store(routed, e)

	// Ring fallback: entry exists but has no routed node yet.
	fallback := "s-00000000000000bb"
	rt.entries.Store(fallback, &entry{})

	for _, tc := range []struct {
		name string
		id   string
	}{
		{"routed", routed},
		{"ring-fallback", fallback},
	} {
		allocs := testing.AllocsPerRun(1000, func() {
			n, ent := rt.gate(tc.id)
			if n == nil {
				t.Fatal("gate found no node")
			}
			ent.mu.RUnlock()
		})
		if allocs != 0 {
			t.Errorf("gate(%s) allocates %.1f per request, want 0", tc.name, allocs)
		}
	}
}
