package cluster_test

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"rmcc/internal/cluster"
	"rmcc/internal/obs"
)

// TestRouterDrainTraceConnected is the acceptance property in miniature:
// one session traced across its whole life — create, a replay on the
// source node, a drain that migrates it, a replay on the destination —
// must come back from the router's /debug/tracez?trace= fan-out as ONE
// trace whose merged tree contains router spans, source-node spans, and
// destination-node spans, stage spans included.
func TestRouterDrainTraceConnected(t *testing.T) {
	tc := newTestCluster(t, 2, cluster.Config{})
	ctx := context.Background()

	trace := obs.MintTraceContext()
	rc := tc.rc.WithTraceContext(trace)

	info, err := rc.CreateSession(ctx, cannealSession(1))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := rc.ReplayWorkload(ctx, info.ID, 5000, 0, nil); err != nil {
		t.Fatalf("replay on source: %v", err)
	}
	src := info.Node

	// Drain the owner mid-lifetime: the migration (snapshot download,
	// restore on the survivor) must ride the same trace.
	res, err := rc.DrainNode(ctx, src)
	if err != nil || res.Migrated < 1 || res.Failed != 0 {
		t.Fatalf("drain %s: %+v, %v", src, res, err)
	}
	if _, err := rc.ReplayWorkload(ctx, info.ID, 5000, 0, nil); err != nil {
		t.Fatalf("replay on destination: %v", err)
	}

	resp, err := tc.rc.Tracez(ctx, trace.TraceID(), 0)
	if err != nil {
		t.Fatalf("cluster tracez: %v", err)
	}
	if resp.Node != "router" || resp.Trace != trace.TraceID() {
		t.Fatalf("tracez header wrong: %+v", resp)
	}

	// One connected trace across three processes.
	nodes := map[string]bool{}
	names := map[string]map[string]bool{} // node -> span names
	for i, sp := range resp.Spans {
		nodes[sp.Node] = true
		if names[sp.Node] == nil {
			names[sp.Node] = map[string]bool{}
		}
		names[sp.Node][sp.Name] = true
		// Satellite: the merged view is deterministic — sorted by
		// (start, node, span ID).
		if i > 0 {
			p := resp.Spans[i-1]
			if sp.StartNS < p.StartNS ||
				(sp.StartNS == p.StartNS && sp.Node < p.Node) ||
				(sp.StartNS == p.StartNS && sp.Node == p.Node && sp.ID < p.ID) {
				t.Errorf("merged spans not sorted by (start, node, id) at %d", i)
			}
		}
	}
	if len(nodes) < 3 {
		t.Fatalf("trace spans %d distinct nodes %v, want router + 2 nodes", len(nodes), nodes)
	}
	if !nodes["router"] || !nodes["node-0"] || !nodes["node-1"] {
		t.Fatalf("node stamps = %v, want router, node-0, node-1", nodes)
	}

	// Router spans: proxied request ingress plus the drain/migration arc.
	for _, want := range []string{"router.create", "router.replay", "router.drain", "drain", "migrate", "snapshot-download", "restore"} {
		if !names["router"][want] {
			t.Errorf("router slice missing %q span (got %v)", want, names["router"])
		}
	}
	// Both nodes ran traced replays, so both carry stage spans.
	for _, node := range []string{"node-0", "node-1"} {
		for _, want := range []string{"http.replay", "replay", "engine-step", "queue-wait"} {
			if !names[node][want] {
				t.Errorf("%s slice missing %q span (got %v)", node, want, names[node])
			}
		}
	}
	// The migration's restore landed as a traced request on the survivor,
	// and its checkpoint download as one on the source.
	if !names["node-0"]["http.restore"] && !names["node-1"]["http.restore"] {
		t.Errorf("no node carries a traced http.restore span: %v", names)
	}
	if !names["node-0"]["http.checkpoint"] && !names["node-1"]["http.checkpoint"] {
		t.Errorf("no node carries a traced http.checkpoint span: %v", names)
	}

	// Cross-process linkage: node-side ingress spans name a remote parent
	// (the router's span ID, or the client's for direct hits).
	remoteLinked := 0
	for _, sp := range resp.Spans {
		if sp.Node != "router" && strings.HasPrefix(sp.Name, "http.") && sp.Remote != 0 {
			remoteLinked++
		}
	}
	if remoteLinked == 0 {
		t.Error("no node ingress span carries a remote parent link")
	}
}

// TestRouterTraceHeaderRejection: the router enforces the same 400-never-5xx
// contract on malformed X-Rmcc-Trace as the nodes, before proxying.
func TestRouterTraceHeaderRejection(t *testing.T) {
	tc := newTestCluster(t, 2, cluster.Config{})
	for _, hdr := range []string{
		"garbage",
		"00-ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ-00f067aa0ba902b7-01",
		obs.MintTraceContext().String() + strings.Repeat("0", 1024),
	} {
		req, err := http.NewRequest(http.MethodGet, tc.hs.URL+"/v1/sessions", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(obs.TraceHeader, hdr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("header %.20q: status %d, want 400", hdr, resp.StatusCode)
		}
	}

	// And the fan-out lookup validates its input.
	if _, err := tc.rc.Tracez(context.Background(), strings.Repeat("x", 32), 0); !isStatus(err, http.StatusBadRequest) {
		t.Errorf("bad trace lookup: %v, want 400", err)
	}
}
