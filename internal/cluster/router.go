package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
)

// Config parameterizes the router. Nodes is required; everything else
// has a production default.
type Config struct {
	// Nodes are the rmccd base URLs ("http://host:port" or bare
	// "host:port"). The node set is fixed for the router's lifetime;
	// drain/activate change a node's duties, not the set.
	Nodes []string
	// VNodes is the virtual-node count per physical node
	// (default DefaultVNodes).
	VNodes int
	// HealthEvery is the health-check poll interval (default 2s).
	HealthEvery time.Duration
	// HealthTimeout bounds one node's statusz+metrics poll (default 2s).
	HealthTimeout time.Duration
	// FailAfter consecutive failed checks mark a node unhealthy
	// (default 3); RecoverAfter consecutive passes bring it back
	// (default 2).
	FailAfter    int
	RecoverAfter int
	// ReconcileEvery is how many health ticks pass between listing-based
	// location reconciles (default 10).
	ReconcileEvery int
	// MigrateConcurrency bounds parallel session migrations during a
	// drain (default 4).
	MigrateConcurrency int
	// MaxBodyBytes caps a create body (default 1 MiB); MaxSnapshotBytes
	// caps a restore blob (default 256 MiB).
	MaxBodyBytes     int64
	MaxSnapshotBytes int64
	// SpanRing caps the router's retained-span ring behind /debug/tracez
	// (default 4096).
	SpanRing int

	// Logger receives structured operational logs (nil disables).
	Logger *obs.Logger
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = 10
	}
	if c.MigrateConcurrency <= 0 {
		c.MigrateConcurrency = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 256 << 20
	}
	if c.SpanRing <= 0 {
		c.SpanRing = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Node admin states.
const (
	nodeActive   = "active"
	nodeDraining = "draining"
	nodeDrained  = "drained"
)

// node is one rmccd backend. The struct is created at New and never
// removed, so the Router.nodes map is read without locking; mutable
// state is either atomic (health verdict, scraped gauges) or guarded by
// Router.mu (admin mode, ring membership).
type node struct {
	id    string // host:port — the wire identity
	base  string // normalized base URL
	u     *url.URL
	proxy *httputil.ReverseProxy
	api   *client.Client

	healthy  atomic.Bool
	sessions atomic.Int64  // rmccd_sessions_active at last good scrape
	p99us    atomic.Uint64 // Float64bits of replay p99 µs at last good scrape
	lastErr  atomic.Pointer[string]

	// Health-loop private (single goroutine; CheckNodes callers in tests
	// must not race the loop — cmd/rmcc-router only starts one).
	consecFail, consecOK int

	// Guarded by Router.mu.
	mode   string
	inRing bool
}

// entry is one routed session. mu is the migration gate: every proxied
// request holds it in read mode for the request's duration, a migration
// holds it in write mode — so a pending migration blocks new requests
// for that one session while in-flight ones drain, and the repoint is
// atomic from the client's point of view. node is the routed location
// (atomic so listings can read it without the gate); nil means "place
// by ring".
type entry struct {
	mu   sync.RWMutex
	node atomic.Pointer[node]
}

// Router is the rmcc-router core: an http.Handler that proxies the
// rmccd session API across a consistent-hash ring of nodes and serves
// the /v1/cluster control plane.
type Router struct {
	cfg     Config
	log     *obs.Logger
	reg     *obs.Registry
	spans   *obs.SpanTracer
	mux     *http.ServeMux
	started time.Time

	// nodes is immutable after New; nodeList is the same set in flag
	// order for deterministic iteration.
	nodes    map[string]*node
	nodeList []*node

	// ring is copy-on-write: the hot path loads the pointer, membership
	// changes build a fresh ring under mu and swap it in.
	ring atomic.Pointer[Ring]
	mu   sync.Mutex

	// entries maps session ID -> *entry. Grows with create/restore/
	// reconcile traffic; delete removes.
	entries sync.Map

	healthStop chan struct{}
	healthDone chan struct{}

	mMigrationsOK   *obs.Counter
	mMigrationsFail *obs.Counter
	mMigrationUS    *obs.Histogram
	mMigrationBytes *obs.Histogram
	mHealthOK       map[string]*obs.Counter
	mHealthFail     map[string]*obs.Counter
	mProxyErrors    *obs.Counter
}

// New builds a router over the configured node set and starts its
// health loop. Nodes start optimistically healthy and in the ring; the
// first failed check cycle takes a dead node out.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node required")
	}
	rt := &Router{
		cfg:        cfg,
		log:        cfg.Logger,
		reg:        obs.NewRegistry(),
		spans:      obs.NewSpanTracer(cfg.SpanRing),
		started:    cfg.Now(),
		nodes:      make(map[string]*node),
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	for _, raw := range cfg.Nodes {
		n, err := rt.newNode(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := rt.nodes[n.id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", n.id)
		}
		rt.nodes[n.id] = n
		rt.nodeList = append(rt.nodeList, n)
	}
	rt.mu.Lock()
	rt.syncRingLocked()
	rt.mu.Unlock()
	rt.initMetrics()
	rt.initRoutes()
	go rt.healthLoop()
	return rt, nil
}

func (rt *Router) newNode(raw string) (*node, error) {
	base := raw
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %q: %w", raw, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cluster: node %q has no host", raw)
	}
	base = u.Scheme + "://" + u.Host
	n := &node{
		id:   u.Host,
		base: base,
		u:    u,
		api:  client.New(base),
		mode: nodeActive,
	}
	n.healthy.Store(true)
	// Deep idle pool: the router multiplexes thousands of concurrent
	// sessions onto one backend host; the default transport keeps 2 idle
	// connections per host and would churn TCP for everything else.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 1024
	tr.MaxIdleConnsPerHost = 512
	n.proxy = &httputil.ReverseProxy{
		Transport: tr,
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(n.u)
			pr.Out.Host = n.u.Host
		},
		// Negative: flush immediately — replay progress frames are an
		// NDJSON stream the client watches live.
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			rt.mProxyErrors.Inc()
			rt.log.Warn("proxy error", "node", n.id, "path", r.URL.Path, "error", err)
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("node %s unreachable: %v", n.id, err))
		},
	}
	return n, nil
}

// syncRingLocked rebuilds the ring from the current node states. Caller
// holds rt.mu.
func (rt *Router) syncRingLocked() {
	r := NewRing(rt.cfg.VNodes)
	for _, n := range rt.nodeList {
		n.inRing = n.mode == nodeActive && n.healthy.Load()
		if n.inRing {
			r.Add(n.id)
		}
	}
	rt.ring.Store(r)
}

// Close stops the health loop. In-flight proxied requests are the HTTP
// server's to drain.
func (rt *Router) Close() {
	close(rt.healthStop)
	<-rt.healthDone
}

// Handler returns the routed handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Metrics exposes the router's registry (tests, embedding).
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Ring exposes the current ring (tests, statusz).
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

func (rt *Router) initRoutes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/sessions", rt.instrument("create", rt.handleCreate))
	rt.mux.HandleFunc("GET /v1/sessions", rt.instrument("list", rt.handleList))
	rt.mux.HandleFunc("POST /v1/sessions/restore", rt.instrument("restore", rt.handleRestore))
	rt.mux.HandleFunc("DELETE /v1/sessions/{id}", rt.instrument("delete", rt.handleSessionDelete))
	rt.mux.HandleFunc("GET /v1/sessions/{id}/snapshot", rt.instrument("snapshot", rt.proxySession))
	rt.mux.HandleFunc("POST /v1/sessions/{id}/snapshot", rt.instrument("checkpoint", rt.proxySession))
	rt.mux.HandleFunc("POST /v1/sessions/{id}/replay", rt.instrument("replay", rt.proxySession))
	rt.mux.HandleFunc("GET /v1/cluster", rt.instrument("cluster", rt.handleCluster))
	rt.mux.HandleFunc("POST /v1/cluster/nodes/{node}/drain", rt.instrument("drain", rt.handleDrain))
	rt.mux.HandleFunc("POST /v1/cluster/nodes/{node}/activate", rt.instrument("activate", rt.handleActivate))
	rt.mux.HandleFunc("GET /healthz", rt.instrument("healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /metrics", rt.instrument("metrics", rt.handleMetrics))
	rt.mux.HandleFunc("GET /statusz", rt.instrument("statusz", rt.handleStatusz))
	rt.mux.HandleFunc("GET /debug/tracez", rt.instrument("tracez", rt.handleTracez))
}

// --- hot path ---

// gate resolves a session ID to its node and takes the request's read
// side of the migration gate. On return with a non-nil node, e.mu is
// held in read mode and the caller must RUnlock after the proxied
// request completes. Steady state (entry exists) is allocation-free;
// the first touch of an unknown ID allocates its entry once.
func (rt *Router) gate(id string) (*node, *entry) {
	v, ok := rt.entries.Load(id)
	if !ok {
		// Unknown to the router (restart, or a client-invented ID): give
		// it an entry so a concurrent migration serializes with us, and
		// fall through to ring placement.
		v, _ = rt.entries.LoadOrStore(id, &entry{})
	}
	e := v.(*entry)
	e.mu.RLock()
	if n := e.node.Load(); n != nil {
		return n, e
	}
	owner := rt.ring.Load().Owner(id)
	if owner != "" {
		if n := rt.nodes[owner]; n != nil {
			return n, e
		}
	}
	e.mu.RUnlock()
	return nil, nil
}

// proxySession forwards one session-scoped request to the session's
// node under the migration gate.
func (rt *Router) proxySession(w http.ResponseWriter, r *http.Request) {
	n, e := rt.gate(r.PathValue("id"))
	if n == nil {
		writeError(w, http.StatusServiceUnavailable, "no nodes in ring")
		return
	}
	defer e.mu.RUnlock()
	n.proxy.ServeHTTP(w, r)
}

// handleSessionDelete proxies a delete and, when the node confirms it,
// forgets the routed location.
func (rt *Router) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n, e := rt.gate(id)
	if n == nil {
		writeError(w, http.StatusServiceUnavailable, "no nodes in ring")
		return
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	n.proxy.ServeHTTP(sw, r)
	e.mu.RUnlock()
	if sw.code/100 == 2 || sw.code == http.StatusNotFound {
		rt.entries.Delete(id)
	}
}

// --- create / restore / list ---

// newSessionID draws a random 64-bit daemon-form ID. Random (not a
// counter) so concurrent routers over one node set cannot collide, and
// so the ring spreads sessions independent of arrival order.
func newSessionID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return fmt.Sprintf("s-%016x", binary.BigEndian.Uint64(b[:]))
}

// handleCreate assigns a session ID, consistent-hashes it to its owning
// node, and forwards the create there under the ?id= contract.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	for attempt := 0; attempt < 4; attempt++ {
		id := newSessionID()
		e := &entry{}
		e.mu.Lock()
		if _, loaded := rt.entries.LoadOrStore(id, e); loaded {
			e.mu.Unlock()
			continue // astronomically unlikely: ID already routed
		}
		owner := rt.ring.Load().Owner(id)
		if owner == "" {
			rt.entries.Delete(id)
			e.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "no nodes in ring")
			return
		}
		n := rt.nodes[owner]
		info, err := n.api.WithTraceContext(reqTrace(r.Context())).CreateSessionRaw(r.Context(), id, body)
		if err != nil {
			rt.entries.Delete(id)
			e.mu.Unlock()
			var ae *client.APIError
			if errors.As(err, &ae) {
				if ae.Status == http.StatusConflict {
					continue // ID collided with a node-local session; redraw
				}
				writeError(w, ae.Status, ae.Msg)
				return
			}
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("node %s unreachable: %v", n.id, err))
			return
		}
		e.node.Store(n)
		e.mu.Unlock()
		info.Node = n.id
		rt.log.Info("session created", "session", info.ID, "node", n.id)
		writeJSON(w, http.StatusCreated, info)
		return
	}
	writeError(w, http.StatusInternalServerError, "could not allocate a session id")
}

// handleRestore peeks the session ID out of the checkpoint blob, routes
// it to its ring owner, and forwards the restore there under the
// session's migration gate.
func (rt *Router) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	id, err := server.PeekSnapshotSessionID(data)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	v, _ := rt.entries.LoadOrStore(id, &entry{})
	e := v.(*entry)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.node.Load(); cur != nil {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("session %q already live on node %s", id, cur.id))
		return
	}
	owner := rt.ring.Load().Owner(id)
	if owner == "" {
		writeError(w, http.StatusServiceUnavailable, "no nodes in ring")
		return
	}
	n := rt.nodes[owner]
	info, err := n.api.WithTraceContext(reqTrace(r.Context())).RestoreSession(r.Context(), data)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) {
			writeError(w, ae.Status, ae.Msg)
			return
		}
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("node %s unreachable: %v", n.id, err))
		return
	}
	e.node.Store(n)
	info.Node = n.id
	rt.log.Info("session restored", "session", info.ID, "node", n.id)
	writeJSON(w, http.StatusCreated, info)
}

// handleList fans a session listing out to every node concurrently and
// merges the results, each annotated with its node.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type result struct {
		node  *node
		infos []server.SessionInfo
		err   error
	}
	results := make([]result, len(rt.nodeList))
	var wg sync.WaitGroup
	for i, n := range rt.nodeList {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			infos, err := n.api.ListSessions(r.Context())
			results[i] = result{node: n, infos: infos, err: err}
		}(i, n)
	}
	wg.Wait()
	out := make([]server.SessionInfo, 0, 64)
	for _, res := range results {
		if res.err != nil {
			rt.log.Warn("list: node unreachable", "node", res.node.id, "error", res.err)
			continue
		}
		for _, info := range res.infos {
			info.Node = res.node.id
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// --- cluster control plane ---

func (rt *Router) clusterInfoLocked() server.ClusterInfo {
	info := server.ClusterInfo{VNodes: rt.cfg.VNodes}
	for _, n := range rt.nodeList {
		cn := server.ClusterNode{
			ID:       n.id,
			URL:      n.base,
			State:    n.mode,
			Healthy:  n.healthy.Load(),
			InRing:   n.inRing,
			Sessions: int(n.sessions.Load()),
		}
		cn.ReplayP99us = math.Float64frombits(n.p99us.Load())
		if le := n.lastErr.Load(); le != nil {
			cn.LastError = *le
		}
		info.Nodes = append(info.Nodes, cn)
	}
	rt.entries.Range(func(_, v any) bool {
		if v.(*entry).node.Load() != nil {
			info.Sessions++
		}
		return true
	})
	return info
}

func (rt *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	info := rt.clusterInfoLocked()
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleDrain takes the node out of the ring and migrates every one of
// its sessions to its new ring owner. The response reports the
// migration tally; 200 only when every session moved.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	nodeID := r.PathValue("node")
	rt.mu.Lock()
	n := rt.nodes[nodeID]
	if n == nil {
		rt.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such node %q", nodeID))
		return
	}
	if n.mode == nodeDraining {
		rt.mu.Unlock()
		writeError(w, http.StatusConflict, "drain already in progress")
		return
	}
	n.mode = nodeDraining
	rt.syncRingLocked()
	if rt.ring.Load().Len() == 0 {
		n.mode = nodeActive
		rt.syncRingLocked()
		rt.mu.Unlock()
		writeError(w, http.StatusConflict, "refusing to drain the last in-ring node")
		return
	}
	rt.mu.Unlock()

	// The drain trace: adopt the caller's (so an operator-traced drain
	// shows up under their trace), or mint one so the migration hops are
	// connected even for an untraced request. Every migrate /
	// snapshot-download / restore span parents under it, across nodes.
	tc := reqTrace(r.Context())
	if !tc.Valid() {
		tc = obs.MintTraceContext()
		tc.SpanID = 0 // the drain span below is the trace root
	}
	dsp := rt.spans.StartT("drain", n.id, tc.SpanID, tc)
	tc.SpanID = dsp.ID()
	rt.log.Info("drain started", "node", n.id, "trace", tc.TraceID())

	// A drain must run to completion once started (a half-migrated node
	// strands sessions), so it survives the triggering request dying.
	res := rt.drainNode(context.WithoutCancel(r.Context()), n, tc)
	dsp.End()

	rt.mu.Lock()
	if res.Failed == 0 {
		n.mode = nodeDrained
	}
	rt.mu.Unlock()
	rt.log.Info("drain finished", "node", n.id, "trace", tc.TraceID(),
		"sessions", res.Sessions, "migrated", res.Migrated, "failed", res.Failed)
	code := http.StatusOK
	if res.Failed > 0 {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, res)
}

// handleActivate returns a drained (or draining, aborting it between
// sessions is not supported — only a finished one) node to service.
func (rt *Router) handleActivate(w http.ResponseWriter, r *http.Request) {
	nodeID := r.PathValue("node")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := rt.nodes[nodeID]
	if n == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such node %q", nodeID))
		return
	}
	if n.mode == nodeDraining {
		writeError(w, http.StatusConflict, "drain in progress")
		return
	}
	n.mode = nodeActive
	rt.syncRingLocked()
	rt.log.Info("node activated", "node", n.id)
	writeJSON(w, http.StatusOK, rt.clusterInfoLocked())
}

// --- health/metrics/statusz endpoints ---

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if rt.ring.Load().Len() == 0 {
		writeError(w, http.StatusServiceUnavailable, "no nodes in ring")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := rt.reg.WritePrometheus(w); err != nil {
		rt.log.Warn("write metrics failed", "error", err)
	}
}

// StatuszInfo is the router's GET /statusz body.
type StatuszInfo struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	VNodes        int     `json:"vnodes"`
	// Sessions counts sessions with a known routed location.
	Sessions int                  `json:"sessions"`
	Nodes    []server.ClusterNode `json:"nodes"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	ci := rt.clusterInfoLocked()
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, StatuszInfo{
		Version:       buildinfo.Version(),
		UptimeSeconds: rt.cfg.Now().Sub(rt.started).Seconds(),
		VNodes:        ci.VNodes,
		Sessions:      ci.Sessions,
		Nodes:         ci.Nodes,
	})
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, server.ErrorBody{Error: msg})
}

// statusWriter captures the response status while passing Flush through
// (replay progress streaming needs the Flusher to survive the wrap).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceCtxKey carries the request's trace context, rebased onto the
// router's request span, so handlers that re-issue node API calls
// (create, restore, drain) can propagate it downstream.
type traceCtxKey struct{}

// reqTrace returns the request's trace context (zero when untraced or
// when the handler runs uninstrumented, e.g. direct calls in tests).
func reqTrace(ctx context.Context) obs.TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(obs.TraceContext)
	return tc
}

// instrument wraps a handler with the router's per-endpoint SLO
// accounting (latency histogram + outcome-class counters) and the
// distributed-trace hop: a malformed X-Rmcc-Trace is a 400 before any
// routing work, a valid one parents a router span and is re-issued on
// the (possibly proxied) outbound request with the router's span ID as
// the new parent.
func (rt *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := rt.reg.Histogram("rmcc_router_request_duration_us",
		"router request latency in microseconds, by endpoint",
		obs.Pow2Buckets(1, 24), obs.L("endpoint", endpoint))
	classes := map[string]*obs.Counter{}
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		classes[class] = rt.reg.Counter("rmcc_router_requests_total",
			"router requests served, by endpoint and status class",
			obs.L("class", class), obs.L("endpoint", endpoint))
	}
	traced := endpoint != "healthz" && endpoint != "metrics" &&
		endpoint != "statusz" && endpoint != "tracez"
	return func(w http.ResponseWriter, r *http.Request) {
		tc, err := parseTraceHeader(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			classes["4xx"].Inc()
			return
		}
		var span obs.Span
		if traced {
			span = rt.spans.StartRemote("router."+endpoint, r.URL.Path, tc)
			// Downstream sees the trace rebased onto the router span: the
			// proxy forwards inbound headers, so rewriting this one makes
			// the router hop the node-side parent.
			tc.SpanID = span.ID()
			r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tc))
			if tc.Valid() {
				r.Header.Set(obs.TraceHeader, tc.String())
			}
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		hist.Observe(uint64(time.Since(start).Microseconds()))
		class := "2xx"
		switch {
		case sw.code >= 500:
			class = "5xx"
		case sw.code >= 400:
			class = "4xx"
		}
		classes[class].Inc()
		if traced {
			span.End()
		}
	}
}

// parseTraceHeader extracts the request's X-Rmcc-Trace context, rejecting
// oversized values on length alone (mirrors the node-side check).
func parseTraceHeader(r *http.Request) (obs.TraceContext, error) {
	v := r.Header.Get(obs.TraceHeader)
	if len(v) > obs.TraceHeaderLen {
		return obs.TraceContext{}, fmt.Errorf("%s header too long (%d bytes)", obs.TraceHeader, len(v))
	}
	tc, err := obs.ParseTraceContext(v)
	if err != nil {
		return obs.TraceContext{}, fmt.Errorf("%s: %v", obs.TraceHeader, err)
	}
	return tc, nil
}
