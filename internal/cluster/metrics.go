package cluster

import (
	"math"

	"rmcc/internal/buildinfo"
	"rmcc/internal/obs"
)

// Router metric series (all under the rmcc_router_ prefix):
//
//	rmcc_router_requests_total{endpoint,class}    — request outcomes
//	rmcc_router_request_duration_us{endpoint}     — request latency
//	rmcc_router_node_healthy{node}                — last health verdict
//	rmcc_router_node_in_ring{node}                — eligible for new sessions
//	rmcc_router_node_draining{node}               — admin drain state
//	rmcc_router_node_sessions{node}               — scraped live sessions
//	rmcc_router_node_replay_p99_us{node}          — scraped replay p99
//	rmcc_router_health_checks_total{node,result}  — checker activity
//	rmcc_router_migrations_total{status}          — drain migrations
//	rmcc_router_migration_duration_us             — per-session move time
//	rmcc_router_migration_bytes                   — snapshot blob sizes
//	rmcc_router_spans_total                       — router spans completed
//	rmcc_router_spans_dropped_total               — span-ring overwrites
//
// The request series are registered lazily by instrument(); everything
// else lives here. rmcc-top's cluster view renders the node gauges.
func (rt *Router) initMetrics() {
	rt.mMigrationsOK = rt.reg.Counter("rmcc_router_migrations_total",
		"drain session migrations, by outcome", obs.L("status", "ok"))
	rt.mMigrationsFail = rt.reg.Counter("rmcc_router_migrations_total", "",
		obs.L("status", "error"))
	rt.mMigrationUS = rt.reg.Histogram("rmcc_router_migration_duration_us",
		"per-session migration wall time in microseconds (snapshot + restore + delete)",
		obs.Pow2Buckets(4, 26))
	rt.mMigrationBytes = rt.reg.Histogram("rmcc_router_migration_bytes",
		"encoded checkpoint size per migrated session", obs.Pow2Buckets(10, 32))
	rt.mProxyErrors = rt.reg.Counter("rmcc_router_proxy_errors_total",
		"proxied requests that failed to reach their node")
	rt.reg.CounterFunc("rmcc_router_spans_total", "router spans completed",
		func() uint64 { return rt.spans.Total() })
	rt.reg.CounterFunc("rmcc_router_spans_dropped_total",
		"router spans overwritten in the ring before any export read them",
		func() uint64 { return rt.spans.Dropped() })

	rt.mHealthOK = make(map[string]*obs.Counter, len(rt.nodeList))
	rt.mHealthFail = make(map[string]*obs.Counter, len(rt.nodeList))
	for _, n := range rt.nodeList {
		n := n
		rt.mHealthOK[n.id] = rt.reg.Counter("rmcc_router_health_checks_total",
			"node health checks, by node and result",
			obs.L("node", n.id), obs.L("result", "ok"))
		rt.mHealthFail[n.id] = rt.reg.Counter("rmcc_router_health_checks_total", "",
			obs.L("node", n.id), obs.L("result", "fail"))
		rt.reg.GaugeFunc("rmcc_router_node_healthy",
			"1 when the node's last health verdict was ok",
			func() float64 { return b2f(n.healthy.Load()) }, obs.L("node", n.id))
		rt.reg.GaugeFunc("rmcc_router_node_in_ring",
			"1 when the node is eligible for new sessions",
			func() float64 {
				rt.mu.Lock()
				defer rt.mu.Unlock()
				return b2f(n.inRing)
			}, obs.L("node", n.id))
		rt.reg.GaugeFunc("rmcc_router_node_draining",
			"1 when the node is draining or drained",
			func() float64 {
				rt.mu.Lock()
				defer rt.mu.Unlock()
				return b2f(n.mode != nodeActive)
			}, obs.L("node", n.id))
		rt.reg.GaugeFunc("rmcc_router_node_sessions",
			"live sessions on the node at the last successful scrape",
			func() float64 { return float64(n.sessions.Load()) }, obs.L("node", n.id))
		rt.reg.GaugeFunc("rmcc_router_node_replay_p99_us",
			"node replay-endpoint p99 latency (µs) at the last successful scrape",
			func() float64 { return math.Float64frombits(n.p99us.Load()) },
			obs.L("node", n.id))
	}

	rt.reg.GaugeFunc("rmcc_router_sessions_routed",
		"sessions with a known routed location",
		func() float64 {
			c := 0
			rt.entries.Range(func(_, v any) bool {
				if v.(*entry).node.Load() != nil {
					c++
				}
				return true
			})
			return float64(c)
		})
	rt.reg.GaugeFunc("rmcc_router_nodes_in_ring", "current ring membership count",
		func() float64 { return float64(rt.ring.Load().Len()) })
	rt.reg.GaugeFunc("rmcc_router_uptime_seconds", "seconds since the router started",
		func() float64 { return rt.cfg.Now().Sub(rt.started).Seconds() })
	rt.reg.GaugeFunc("rmcc_router_build_info",
		"constant 1, labeled with the router build version and revision",
		func() float64 { return 1 },
		obs.L("revision", buildinfo.GitSHA()), obs.L("version", buildinfo.Version()))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
