// Package cluster implements rmcc-router: a consistent-hash reverse
// proxy that spreads rmccd sessions across a set of nodes, health-checks
// them off their /statusz + /metrics surface, and drains a node by
// migrating its sessions to their new ring owners via the snapshot
// download/restore endpoints.
//
// See docs/CLUSTER.md for the operational reference.
package cluster

import (
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each physical node
// contributes vnodes points; a key is owned by the node of the first
// point at or clockwise past the key's hash. Membership changes move
// only the keys whose owning arc changed — removing one of N nodes
// remaps ~1/N of the keyspace and nothing else (property-tested).
//
// Ring is not safe for concurrent mutation; the router swaps immutable
// rings through an atomic pointer instead of locking the hot path.
type Ring struct {
	vnodes int
	points []ringPoint
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes balances ownership to within a few percent across
// typical 3-16 node sets without making membership changes expensive.
const DefaultVNodes = 160

// NewRing builds an empty ring with the given virtual-node count per
// physical node (DefaultVNodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// Clone returns a deep copy, the basis for copy-on-write membership
// changes.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes: r.vnodes,
		points: make([]ringPoint, len(r.points)),
		nodes:  make(map[string]bool, len(r.nodes)),
	}
	copy(c.points, r.points)
	for n := range r.nodes {
		c.nodes[n] = true
	}
	return c
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports node membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len is the physical-node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner maps a key to its owning node, "" on an empty ring. Allocation-
// free: this sits on the router's per-request hot path.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashString(key)
	// First point with hash >= h, wrapping to points[0] past the end.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].node
}

// FNV-1a 64 with a murmur3 finalizer, hand-rolled so Owner never
// allocates (hash/fnv forces the key through a []byte conversion). Raw
// FNV-1a is a poor ring hash: its avalanche is weak enough that the 160
// vnode indices of one node — inputs differing only in their trailing
// bytes — land clustered on one arc, collapsing the node to a single
// giant point and wrecking balance. The finalizer spreads them.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func hashString(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// vnodeHash spreads one node over the ring: FNV-1a over the node name,
// a separator, and the vnode index little-endian — distinct from any
// session-ID hash and stable across processes.
func vnodeHash(node string, i int) uint64 {
	h := fnvOffset64
	for j := 0; j < len(node); j++ {
		h ^= uint64(node[j])
		h *= fnvPrime64
	}
	h ^= '#'
	h *= fnvPrime64
	v := uint32(i)
	for j := 0; j < 4; j++ {
		h ^= uint64(byte(v >> (8 * j)))
		h *= fnvPrime64
	}
	return mix64(h)
}
