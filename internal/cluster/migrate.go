package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rmcc/internal/obs"
	"rmcc/internal/server"
	"rmcc/internal/server/client"
)

// Drain-by-migration: every session on the draining node is snapshotted
// (the node-side replay lease makes the snapshot a consistent cut),
// restored on its new ring owner, deleted at the source, and repointed —
// all under the session's write-side migration gate, so a client
// replaying through the router never observes the move beyond a brief
// stall: requests in flight finish against the source, queued ones
// unblock against the target, and the replay stream stays bit-identical.

// drainNode migrates every session off src. The ring has already been
// rebuilt without src by the caller. The listing pass repeats until the
// node reports empty: a create that sampled the ring just before the
// drain flipped it can still land a session on src after the first
// listing, and a single pass would strand it there.
func (rt *Router) drainNode(ctx context.Context, src *node, tc obs.TraceContext) server.DrainResult {
	start := time.Now()
	res := server.DrainResult{Node: src.id}
	seen := make(map[string]bool)
	for round := 0; round < 5; round++ {
		infos, err := src.api.ListSessions(ctx)
		if err != nil {
			res.Failed++
			res.Errors = append(res.Errors, fmt.Sprintf("list sessions on %s: %v", src.id, err))
			break
		}
		var fresh []string
		for _, info := range infos {
			if !seen[info.ID] {
				seen[info.ID] = true
				fresh = append(fresh, info.ID)
			}
		}
		if len(fresh) == 0 {
			break
		}
		res.Sessions += len(fresh)
		if round > 0 {
			rt.log.Info("drain: late arrivals", "node", src.id, "sessions", len(fresh))
		}
		sem := make(chan struct{}, rt.cfg.MigrateConcurrency)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, id := range fresh {
			wg.Add(1)
			sem <- struct{}{}
			go func(id string) {
				defer wg.Done()
				defer func() { <-sem }()
				err := rt.migrateSession(ctx, id, src, tc)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					res.Failed++
					if len(res.Errors) < 16 {
						res.Errors = append(res.Errors, fmt.Sprintf("%s: %v", id, err))
					}
					return
				}
				res.Migrated++
			}(id)
		}
		wg.Wait()
		if res.Failed > 0 {
			break // a stuck session would loop forever; report and stop
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res
}

// migrateSession moves one session from src to its current ring owner:
// gate-write-lock, snapshot download, restore on the target, delete at
// the source, repoint. Idempotent for sessions that already moved or
// vanished (evicted, deleted) since the drain listing. The drain trace
// threads through every hop: the migrate span parents the
// snapshot-download and restore spans, and the node API calls carry the
// rebased context so both nodes record their side under the same trace.
func (rt *Router) migrateSession(ctx context.Context, id string, src *node, tc obs.TraceContext) error {
	v, _ := rt.entries.LoadOrStore(id, &entry{})
	e := v.(*entry)
	// Taking the write lock waits out every in-flight request on this
	// session and blocks new ones until the move lands.
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.node.Load(); cur != nil && cur != src {
		return nil // already migrated (racing drain, earlier retry)
	}
	owner := rt.ring.Load().Owner(id)
	if owner == "" || owner == src.id {
		return errors.New("no migration target in ring")
	}
	target := rt.nodes[owner]
	start := time.Now()
	msp := rt.spans.StartT("migrate", id, tc.SpanID, tc)
	defer msp.End()
	tc.SpanID = msp.ID()

	blob, err := rt.snapshotWithRetry(ctx, src, id, tc)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			// Gone between listing and now (TTL eviction, client delete):
			// nothing to move.
			e.node.Store(nil)
			return nil
		}
		rt.mMigrationsFail.Inc()
		return fmt.Errorf("snapshot on %s: %w", src.id, err)
	}

	rsp := rt.spans.StartT("restore", id, tc.SpanID, tc)
	rtc := tc
	rtc.SpanID = rsp.ID()
	api := target.api.WithTraceContext(rtc)
	if _, err := api.RestoreSession(ctx, blob); err != nil {
		var ae *client.APIError
		// Restore-conflict semantics: a stale copy on the target (a crash
		// between restore and source-delete in an earlier attempt) loses
		// to the fresh snapshot — replace it once.
		if errors.As(err, &ae) && ae.Status == http.StatusConflict {
			if derr := api.DeleteSession(ctx, id); derr == nil {
				_, err = api.RestoreSession(ctx, blob)
			}
		}
		if err != nil {
			rsp.End()
			rt.mMigrationsFail.Inc()
			return fmt.Errorf("restore on %s: %w", target.id, err)
		}
	}
	rsp.End()

	// The target owns the state now; the source copy must go so it can
	// never serve (and then lose) a stray write. Best-effort: we hold the
	// gate, so nothing routed can touch the source copy, and the node's
	// TTL janitor reaps it if the delete fails.
	if err := src.api.WithTraceContext(tc).DeleteSession(ctx, id); err != nil {
		rt.log.Warn("migrate: source delete failed",
			"session", id, "node", src.id, "error", err)
	}

	e.node.Store(target)
	rt.mMigrationsOK.Inc()
	rt.mMigrationUS.Observe(uint64(time.Since(start).Microseconds()))
	rt.mMigrationBytes.Observe(uint64(len(blob)))
	rt.log.Info("session migrated", "session", id, "trace", tc.TraceID(),
		"from", src.id, "to", target.id, "bytes", len(blob))
	return nil
}

// snapshotWithRetry downloads a session checkpoint, waiting out
// transient 409s (the node's periodic checkpointer briefly holds the
// replay lease; with the gate write-locked nothing else can).
func (rt *Router) snapshotWithRetry(ctx context.Context, src *node, id string, tc obs.TraceContext) ([]byte, error) {
	ssp := rt.spans.StartT("snapshot-download", id, tc.SpanID, tc)
	defer ssp.End()
	tc.SpanID = ssp.ID()
	api := src.api.WithTraceContext(tc)
	for attempt := 0; ; attempt++ {
		blob, err := api.CheckpointDownload(ctx, id)
		if err == nil {
			return blob, nil
		}
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusConflict || attempt >= 100 {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
