package cluster

import (
	"net/http"
	"sort"
	"strconv"
	"sync"

	"rmcc/internal/obs"
	"rmcc/internal/server"
)

// routerNode is the node stamp on the router's own tracez rows. Span IDs
// are per-process ordinals, so the stamp is what keeps merged rows
// attributable (and router/node ID collisions harmless).
const routerNode = "router"

// handleTracez is the cluster-wide trace surface. Without ?trace= it is
// the router's own slowest-spans view; with ?trace=<32-hex id> it fans
// the lookup out to every node, merges their rows with the router's, and
// returns one deterministic tree: rows sorted by (start, node, span ID),
// each stamped with the process that recorded it. An unreachable node
// degrades the view (its slice is missing), never the request.
func (rt *Router) handleTracez(w http.ResponseWriter, r *http.Request) {
	trace := r.URL.Query().Get("trace")
	if trace == "" {
		n := 25
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 || v > 10_000 {
				writeError(w, http.StatusBadRequest, "n must be in [1, 10000]")
				return
			}
			n = v
		}
		slow := rt.spans.Slowest(n)
		resp := server.TracezResponse{
			Node:         routerNode,
			TotalSpans:   rt.spans.Total(),
			Retained:     rt.spans.Len(),
			SpansDropped: rt.spans.Dropped(),
			Slowest:      make([]server.TracezSpan, 0, len(slow)),
		}
		for _, sp := range slow {
			resp.Slowest = append(resp.Slowest, server.TracezSpanOf(sp, routerNode))
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	hi, lo, err := obs.ParseTraceID(trace)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	local := rt.spans.SpansForTrace(hi, lo)
	spans := make([]server.TracezSpan, 0, len(local)+16)
	for _, sp := range local {
		spans = append(spans, server.TracezSpanOf(sp, routerNode))
	}

	type result struct {
		node *node
		resp server.TracezResponse
		err  error
	}
	results := make([]result, len(rt.nodeList))
	var wg sync.WaitGroup
	for i, n := range rt.nodeList {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			resp, err := n.api.Tracez(r.Context(), trace, 0)
			results[i] = result{node: n, resp: resp, err: err}
		}(i, n)
	}
	wg.Wait()
	dropped := rt.spans.Dropped()
	for _, res := range results {
		if res.err != nil {
			rt.log.Warn("tracez: node unreachable", "node", res.node.id, "error", res.err)
			continue
		}
		dropped += res.resp.SpansDropped
		spans = append(spans, res.resp.Spans...)
	}
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	})
	writeJSON(w, http.StatusOK, server.TracezResponse{
		Node:         routerNode,
		TotalSpans:   rt.spans.Total(),
		Retained:     rt.spans.Len(),
		SpansDropped: dropped,
		Trace:        trace,
		Spans:        spans,
	})
}
