package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Deterministic daemon-form IDs, spread like the router's own
		// random ones would be by the hash.
		keys[i] = fmt.Sprintf("s-%016x", uint64(i)*0x9e3779b97f4a7c15+7)
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.Owner(k)
	}
	return out
}

// TestRingRemapOnlyRemovedNode is the consistency property the whole
// design rests on: removing one of N nodes remaps exactly the removed
// node's keys (every other key keeps its owner), and the moved fraction
// stays near 1/N.
func TestRingRemapOnlyRemovedNode(t *testing.T) {
	const nNodes, nKeys = 5, 20_000
	r := NewRing(0)
	var nodes []string
	for i := 0; i < nNodes; i++ {
		nodes = append(nodes, fmt.Sprintf("10.0.0.%d:8077", i+1))
		r.Add(nodes[i])
	}
	keys := ringKeys(nKeys)
	before := owners(r, keys)

	for _, victim := range nodes {
		r2 := r.Clone()
		r2.Remove(victim)
		moved := 0
		for _, k := range keys {
			after := r2.Owner(k)
			if before[k] != victim {
				if after != before[k] {
					t.Fatalf("remove(%s): key %s moved %s -> %s but its owner did not leave",
						victim, k, before[k], after)
				}
				continue
			}
			if after == victim {
				t.Fatalf("remove(%s): key %s still owned by removed node", victim, k)
			}
			moved++
		}
		frac := float64(moved) / float64(nKeys)
		max := 1.0/float64(nNodes) + 0.05
		if frac > max {
			t.Fatalf("remove(%s): %.3f of keys moved, want <= %.3f", victim, frac, max)
		}
		if moved == 0 {
			t.Fatalf("remove(%s): no keys moved — node owned nothing", victim)
		}
		// Adding the node back restores the original ownership exactly.
		r2.Add(victim)
		for _, k := range keys {
			if got := r2.Owner(k); got != before[k] {
				t.Fatalf("re-add(%s): key %s owned by %s, want %s", victim, k, got, before[k])
			}
		}
	}
}

// TestRingBalance: with the default vnode count, no node owns a wildly
// disproportionate share.
func TestRingBalance(t *testing.T) {
	const nNodes, nKeys = 4, 40_000
	r := NewRing(0)
	for i := 0; i < nNodes; i++ {
		r.Add(fmt.Sprintf("10.0.0.%d:8077", i+1))
	}
	counts := map[string]int{}
	for _, k := range ringKeys(nKeys) {
		counts[r.Owner(k)]++
	}
	if len(counts) != nNodes {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), nNodes, counts)
	}
	ideal := nKeys / nNodes
	for node, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Fatalf("node %s owns %d keys, want within [%d, %d]: %v",
				node, c, ideal/2, ideal*2, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("s-01"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	r.Add("a:1")
	for _, k := range ringKeys(100) {
		if got := r.Owner(k); got != "a:1" {
			t.Fatalf("single-node ring owner = %q", got)
		}
	}
	r.Add("a:1") // duplicate add is a no-op
	if len(r.points) != r.vnodes {
		t.Fatalf("duplicate add grew the ring to %d points", len(r.points))
	}
	r.Remove("b:2") // absent remove is a no-op
	if r.Len() != 1 || !r.Has("a:1") {
		t.Fatalf("ring membership corrupted: %v", r.Nodes())
	}
	r.Remove("a:1")
	if r.Len() != 0 || r.Owner("s-01") != "" {
		t.Fatal("ring not empty after removing the only node")
	}
}

// TestOwnerAllocFree guards the routing hot path: one Owner lookup must
// not allocate.
func TestOwnerAllocFree(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("10.0.0.%d:8077", i+1))
	}
	keys := ringKeys(64)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Owner(keys[i%len(keys)]) == "" {
			t.Fatal("no owner")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Ring.Owner allocates %.1f per lookup, want 0", allocs)
	}
}
