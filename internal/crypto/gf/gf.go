// Package gf implements arithmetic in GF(2^64) and the Galois-field
// dot-product message authentication code used by the secure-memory engine
// (paper Figure 2b).
//
// A 64-byte memory block is viewed as eight 64-bit words w0..w7. The MAC
// body is the dot product sum_i (w_i ⊗ k_i) over GF(2^64) with per-slot
// secret keys k_i, truncated to 56 bits and XORed with (a truncation of) the
// block's one-time pad. The dot product is fully parallel in hardware and
// the paper models it at 1 ns, far off the critical path compared to AES.
package gf

// Poly is the reduction polynomial for GF(2^64): x^64 + x^4 + x^3 + x + 1
// (a standard irreducible pentanomial), represented by its low 64 bits.
const Poly uint64 = 0x1b

// Mul multiplies a and b in GF(2^64).
func Mul(a, b uint64) uint64 {
	var p uint64
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a >> 63
		a <<= 1
		if hi != 0 {
			a ^= Poly
		}
		b >>= 1
	}
	return p
}

// Add adds (XORs) two field elements; subtraction is identical.
func Add(a, b uint64) uint64 { return a ^ b }

// Pow raises a to the e-th power in GF(2^64) by square-and-multiply.
func Pow(a uint64, e uint64) uint64 {
	result := uint64(1)
	base := a
	for e > 0 {
		if e&1 != 0 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (a^(2^64-2)); Inv(0) is 0.
func Inv(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	// a^(2^64-2) via Fermat's little theorem for GF(2^64).
	return Pow(a, ^uint64(0)-1)
}

// BlockWords is the number of 64-bit words in a 64-byte memory block.
const BlockWords = 8

// MACBits is the width of the stored MAC (paper: 56-bit MACs co-located
// with data and ECC in the same DRAM block).
const MACBits = 56

// MACMask masks a 64-bit value down to MACBits.
const MACMask = (uint64(1) << MACBits) - 1

// Keys is the per-slot secret key vector for the dot product.
type Keys [BlockWords]uint64

// DotProduct computes sum_i (words[i] ⊗ keys[i]) over GF(2^64).
func DotProduct(words *[BlockWords]uint64, keys *Keys) uint64 {
	var acc uint64
	for i := 0; i < BlockWords; i++ {
		acc ^= Mul(words[i], keys[i])
	}
	return acc
}

// MAC computes the 56-bit MAC for a block: the dot product of the block's
// words with the keys, XORed with the OTP contribution (already truncated
// and folded by the caller's OTP unit), masked to 56 bits.
func MAC(words *[BlockWords]uint64, keys *Keys, otp56 uint64) uint64 {
	return (DotProduct(words, keys) ^ otp56) & MACMask
}

// FoldOTP reduces a 128-bit OTP (hi, lo) to the 56-bit value blended into
// the MAC: XOR the halves and truncate, matching the paper's "XOR and
// Truncate" box in Figure 2b.
func FoldOTP(hi, lo uint64) uint64 {
	return (hi ^ lo) & MACMask
}
