package gf

import (
	"testing"
	"testing/quick"

	"rmcc/internal/rng"
)

func TestMulBasics(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{0xff, 0, 0},
		{2, 1 << 63, Poly}, // x * x^63 = x^64 ≡ Poly
		{3, 3, 5},          // (x+1)^2 = x^2+1
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 20; i++ {
		a := r.Uint64()
		if a == 0 {
			continue
		}
		inv := Inv(a)
		if got := Mul(a, inv); got != 1 {
			t.Fatalf("a*Inv(a) = %#x for a=%#x", got, a)
		}
	}
	if Inv(0) != 0 {
		t.Fatal("Inv(0) should be 0 by convention")
	}
}

func TestPow(t *testing.T) {
	a := uint64(0x9249)
	if Pow(a, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if Pow(a, 1) != a {
		t.Fatal("a^1 != a")
	}
	if Pow(a, 3) != Mul(a, Mul(a, a)) {
		t.Fatal("a^3 mismatch")
	}
}

func TestDotProductLinearity(t *testing.T) {
	r := rng.New(7)
	var keys Keys
	for i := range keys {
		keys[i] = r.Uint64()
	}
	f := func(w1, w2 [BlockWords]uint64) bool {
		var sum [BlockWords]uint64
		for i := range sum {
			sum[i] = w1[i] ^ w2[i]
		}
		return DotProduct(&sum, &keys) == DotProduct(&w1, &keys)^DotProduct(&w2, &keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMACDetectsSingleWordTamper(t *testing.T) {
	r := rng.New(11)
	var keys Keys
	for i := range keys {
		keys[i] = r.Uint64() | 1 // nonzero keys
	}
	var words [BlockWords]uint64
	for i := range words {
		words[i] = r.Uint64()
	}
	otp := FoldOTP(r.Uint64(), r.Uint64())
	mac := MAC(&words, &keys, otp)
	for i := 0; i < BlockWords; i++ {
		tampered := words
		tampered[i] ^= 1 << uint(i*7)
		if MAC(&tampered, &keys, otp) == mac {
			t.Fatalf("single-bit tamper in word %d not detected", i)
		}
	}
}

func TestMACWidth(t *testing.T) {
	f := func(words [BlockWords]uint64, k0 uint64, otpHi, otpLo uint64) bool {
		var keys Keys
		for i := range keys {
			keys[i] = k0 + uint64(i)
		}
		m := MAC(&words, &keys, FoldOTP(otpHi, otpLo))
		return m <= MACMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACOTPBindsValue(t *testing.T) {
	// Same data, different OTP (i.e. different counter) must give a
	// different MAC: replaying stale data+MAC under a new counter fails.
	var keys Keys
	keys[0] = 0xabcdef
	var words [BlockWords]uint64
	words[0] = 42
	m1 := MAC(&words, &keys, FoldOTP(1, 2))
	m2 := MAC(&words, &keys, FoldOTP(3, 4))
	if m1 == m2 {
		t.Fatal("MAC did not bind the OTP")
	}
}

func TestFoldOTP(t *testing.T) {
	if got := FoldOTP(0xff00000000000000, 0x00000000000000ff); got != 0xff000000000000ff&MACMask {
		t.Fatalf("FoldOTP = %#x", got)
	}
}

func BenchmarkDotProduct(b *testing.B) {
	var keys Keys
	var words [BlockWords]uint64
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		words[i] = uint64(i) * 0xd1342543de82ef95
	}
	for i := 0; i < b.N; i++ {
		_ = DotProduct(&words, &keys)
	}
}
