package otp_test

import (
	"fmt"

	"rmcc/internal/crypto/otp"
)

// Example shows the RMCC split-OTP construction (paper Figure 11): the
// counter-only AES result is the memoizable half; combined with the
// always-fast address-only result it yields the pad that encrypts a block.
func Example() {
	unit := otp.MustNewUnit(otp.DeriveKeys([16]byte{1, 2, 3}, 16))

	// The slow, memoizable part: one AES pair per counter *value*.
	ctrRes := unit.CounterOnly(42)

	// Encrypt and decrypt a block (XOR with the pad is an involution).
	block := [8]uint64{0xdeadbeef, 1, 2, 3, 4, 5, 6, 7}
	orig := block
	pad := unit.RMCCPad(ctrRes, 0x1000)
	pad.XorBlock(&block) // encrypt
	encryptedDiffers := block != orig
	pad.XorBlock(&block) // decrypt
	fmt.Println("ciphertext differs:", encryptedDiffers)
	fmt.Println("round trip ok:", block == orig)

	// The MAC binds contents, address, and counter.
	mac := unit.BlockMAC(&block, unit.RMCCMacOTP(ctrRes, 0x1000))
	tampered := block
	tampered[0] ^= 1
	fmt.Println("tamper detected:", unit.BlockMAC(&tampered, unit.RMCCMacOTP(ctrRes, 0x1000)) != mac)
	// Output:
	// ciphertext differs: true
	// round trip ok: true
	// tamper detected: true
}
