package otp

import (
	"testing"
	"testing/quick"

	"rmcc/internal/rng"
)

func testUnit(t testing.TB, keyLen int) *Unit {
	t.Helper()
	var master [16]byte
	for i := range master {
		master[i] = byte(i * 17)
	}
	return MustNewUnit(DeriveKeys(master, keyLen))
}

func TestDeriveKeysDistinct(t *testing.T) {
	k := DeriveKeys([16]byte{1}, 16)
	all := [][]byte{k.BaselineEnc, k.BaselineMac, k.CtrEnc, k.CtrMac, k.AddrEnc, k.AddrMac}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if string(all[i]) == string(all[j]) {
				t.Fatalf("keys %d and %d identical", i, j)
			}
		}
	}
	for i, v := range k.Mac {
		if v == 0 {
			t.Fatalf("mac key %d is zero", i)
		}
	}
}

func TestDeriveKeys256(t *testing.T) {
	k := DeriveKeys([16]byte{2}, 32)
	if len(k.CtrEnc) != 32 {
		t.Fatalf("key length %d, want 32", len(k.CtrEnc))
	}
	if string(k.CtrEnc[:16]) == string(k.CtrEnc[16:]) {
		t.Fatal("key halves identical; KDF not mixing offset")
	}
	MustNewUnit(k) // must build an AES-256 unit
}

func TestPadXorInvolution(t *testing.T) {
	u := testUnit(t, 16)
	f := func(block [8]uint64, addr, ctr uint64) bool {
		orig := block
		p := u.RMCCPad(u.CounterOnly(ctr), addr)
		p.XorBlock(&block) // encrypt
		if block == orig {
			return false // pad must not be all-zero in practice
		}
		p.XorBlock(&block) // decrypt
		return block == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRMCCPadDependsOnCounterAndAddress(t *testing.T) {
	u := testUnit(t, 16)
	base := u.RMCCPad(u.CounterOnly(100), 0x1000)
	if diff := u.RMCCPad(u.CounterOnly(101), 0x1000); diff == base {
		t.Fatal("pad identical across counters")
	}
	if diff := u.RMCCPad(u.CounterOnly(100), 0x1040); diff == base {
		t.Fatal("pad identical across addresses")
	}
}

func TestRMCCPadWordsDistinct(t *testing.T) {
	u := testUnit(t, 16)
	p := u.RMCCPad(u.CounterOnly(7), 0x2000)
	for i := 0; i < WordsPerBlock; i++ {
		for j := i + 1; j < WordsPerBlock; j++ {
			if p[i] == p[j] {
				t.Fatalf("pad words %d and %d identical", i, j)
			}
		}
	}
}

func TestEncMacPadsDiffer(t *testing.T) {
	// §IV-C5: OTPs for encryption and MAC must differ for the same block.
	u := testUnit(t, 16)
	cr := u.CounterOnly(42)
	if cr.Enc == cr.Mac {
		t.Fatal("counter-only results for enc and mac identical")
	}
	encW := Combine(cr.Enc, u.AddressOnlyEnc(0x3000, 0))
	macW := Combine(cr.Mac, u.AddressOnlyMac(0x3000))
	if encW == macW {
		t.Fatal("enc and mac pad words identical")
	}
}

// TestTypeARepeatEliminated reproduces §IV-D1: the OTP of (addr=x, ctr=y)
// must differ from the OTP of (addr=y, ctr=x) even though CLMUL is
// commutative, because the AES inputs are padded into disjoint domains and
// keyed differently.
func TestTypeARepeatEliminated(t *testing.T) {
	u := testUnit(t, 16)
	x, y := uint64(0x40), uint64(0x80)
	p1 := u.RMCCPad(u.CounterOnly(y), x)
	p2 := u.RMCCPad(u.CounterOnly(x), y)
	if p1 == p2 {
		t.Fatal("type-A OTP repeat: swap of addr/ctr roles produced identical pads")
	}
}

// TestNoOTPRepeatAcrossWritebacks samples the core security invariant: for a
// fixed block, pads across many counter values never collide.
func TestNoOTPRepeatAcrossWritebacks(t *testing.T) {
	u := testUnit(t, 16)
	addr := uint64(0x7f000)
	seen := make(map[Word128]uint64)
	for ctr := uint64(1); ctr <= 4096; ctr++ {
		p := u.RMCCPad(u.CounterOnly(ctr), addr)
		if prev, ok := seen[p[0]]; ok {
			t.Fatalf("OTP repeat between counters %d and %d", prev, ctr)
		}
		seen[p[0]] = ctr
	}
}

func TestCounterMaskApplied(t *testing.T) {
	u := testUnit(t, 16)
	// Counters differing only above bit 55 are architecturally identical.
	a := u.CounterOnly(5)
	b := u.CounterOnly(5 | 1<<56)
	if a != b {
		t.Fatal("counter-only result should depend only on the low 56 bits")
	}
}

func TestBaselinePadProperties(t *testing.T) {
	u := testUnit(t, 16)
	p1 := u.BaselinePad(0x1000, 9)
	p2 := u.BaselinePad(0x1000, 10)
	p3 := u.BaselinePad(0x1040, 9)
	if p1 == p2 || p1 == p3 {
		t.Fatal("baseline pad does not separate counter/address")
	}
	for i := 0; i < WordsPerBlock; i++ {
		for j := i + 1; j < WordsPerBlock; j++ {
			if p1[i] == p1[j] {
				t.Fatalf("baseline pad words %d, %d identical", i, j)
			}
		}
	}
}

func TestBaselineMacOTPDiffersFromEncPad(t *testing.T) {
	u := testUnit(t, 16)
	p := u.BaselinePad(0x4000, 3)
	m := u.BaselineMacOTP(0x4000, 3)
	if m == (p[0].Hi^p[0].Lo)&((1<<56)-1) {
		t.Fatal("MAC OTP coincides with folded enc pad word (keys not separated)")
	}
}

func TestBlockMACVerifyAndTamper(t *testing.T) {
	u := testUnit(t, 16)
	r := rng.New(3)
	var words [8]uint64
	for i := range words {
		words[i] = r.Uint64()
	}
	otp56 := u.RMCCMacOTP(u.CounterOnly(77), 0x9000)
	mac := u.BlockMAC(&words, otp56)
	if got := u.BlockMAC(&words, otp56); got != mac {
		t.Fatal("MAC not deterministic")
	}
	words[3] ^= 0x10
	if got := u.BlockMAC(&words, otp56); got == mac {
		t.Fatal("tampered block passed MAC")
	}
}

// TestRMCCvsBaselineEquivalentSecurityShape checks that the RMCC pad is as
// "wide" as the baseline pad: full 512-bit coverage, no zero words.
func TestRMCCPadNonDegenerate(t *testing.T) {
	u := testUnit(t, 16)
	r := rng.New(4)
	zeroWords := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		p := u.RMCCPad(u.CounterOnly(r.Uint64()), r.Uint64()&^63)
		for _, w := range p {
			if w.IsZero() {
				zeroWords++
			}
		}
	}
	if zeroWords > 0 {
		t.Fatalf("%d zero pad words in %d trials", zeroWords, trials)
	}
}

func BenchmarkCounterOnly(b *testing.B) {
	u := testUnit(b, 16)
	for i := 0; i < b.N; i++ {
		_ = u.CounterOnly(uint64(i))
	}
}

func BenchmarkRMCCPadFromMemoizedResult(b *testing.B) {
	u := testUnit(b, 16)
	cr := u.CounterOnly(1) // memoized: computed once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.RMCCPad(cr, uint64(i)<<6)
	}
}

func BenchmarkBaselinePad(b *testing.B) {
	u := testUnit(b, 16)
	for i := 0; i < b.N; i++ {
		_ = u.BaselinePad(uint64(i)<<6, uint64(i))
	}
}
