// Package otp derives the one-time pads that encrypt memory blocks and
// authenticate them, in both the baseline SGX construction (paper Figure 2)
// and the RMCC split construction (paper Figure 11).
//
// Baseline: each 128-bit word w of a 64-byte block gets
//
//	OTP_w = AES_Kenc(µ ‖ addr ‖ w ‖ counter)
//
// so the counter and address enter a single AES call and nothing is
// reusable across blocks. The MAC pad similarly folds addr and counter into
// one AES call under a different key.
//
// RMCC: the counter contribution and address contribution are computed by
// two *independent* AES calls and combined by a truncated carry-less
// multiply:
//
//	ctrRes  = AES_Kc(0^72 ‖ counter56)          — memoizable, one per value
//	addrRes = AES_Ka(addr64 ‖ w ‖ 0^62)         — always fast (addr known)
//	OTP_w   = TruncMiddle(ctrRes ⊗ addrRes)
//
// Encryption and MAC use different counter keys and different address keys,
// so a memoization-table entry stores two 16-byte counter-only results
// (paper §IV-E).
package otp

import (
	"rmcc/internal/crypto/aes"
	"rmcc/internal/crypto/clmul"
	"rmcc/internal/crypto/gf"
)

// Word128 aliases the 128-bit limb pair used throughout the OTP unit.
type Word128 = clmul.Word128

// WordsPerBlock is the number of 128-bit words in a 64-byte block, each of
// which needs its own pad word.
const WordsPerBlock = 4

// Pad is the 512-bit encryption pad for one 64-byte block.
type Pad [WordsPerBlock]Word128

// XorBlock XORs the pad into a block of eight 64-bit words in place,
// encrypting plaintext or decrypting ciphertext (the operation is an
// involution).
func (p *Pad) XorBlock(block *[8]uint64) {
	for w := 0; w < WordsPerBlock; w++ {
		block[2*w] ^= p[w].Hi
		block[2*w+1] ^= p[w].Lo
	}
}

// CtrResult is the counter-only AES contribution for one counter value:
// one 128-bit result for the encryption pad and one for the MAC pad. This
// pair is exactly what an RMCC memoization-table entry stores (32 B).
type CtrResult struct {
	Enc Word128
	Mac Word128
}

// Keys bundles all secret key material for one protection domain.
type Keys struct {
	// Baseline single-AES keys.
	BaselineEnc []byte
	BaselineMac []byte
	// RMCC split keys: separate counter-side and address-side keys for
	// encryption vs MAC so the two pads differ for the same block (§IV-C5).
	CtrEnc  []byte
	CtrMac  []byte
	AddrEnc []byte
	AddrMac []byte
	// Dot-product keys for the MAC body.
	Mac gf.Keys
}

// DeriveKeys expands a master seed into the full key set. Keys are derived
// by encrypting distinct constants under the master key, a standard KDF
// shape that keeps the package dependency-free.
func DeriveKeys(master [16]byte, keyLen int) Keys {
	kdf := aes.MustNew(master[:])
	derive := func(label byte) []byte {
		out := make([]byte, keyLen)
		for off := 0; off < keyLen; off += 16 {
			var in [16]byte
			in[0] = label
			in[1] = byte(off)
			kdf.Encrypt(out[off:off+16], in[:])
		}
		return out
	}
	var k Keys
	k.BaselineEnc = derive(1)
	k.BaselineMac = derive(2)
	k.CtrEnc = derive(3)
	k.CtrMac = derive(4)
	k.AddrEnc = derive(5)
	k.AddrMac = derive(6)
	for i := range k.Mac {
		var in, out [16]byte
		in[0] = 7
		in[1] = byte(i)
		kdf.Encrypt(out[:], in[:])
		k.Mac[i] = uint64(out[0])<<56 | uint64(out[1])<<48 | uint64(out[2])<<40 |
			uint64(out[3])<<32 | uint64(out[4])<<24 | uint64(out[5])<<16 |
			uint64(out[6])<<8 | uint64(out[7])
		if k.Mac[i] == 0 {
			k.Mac[i] = 1
		}
	}
	return k
}

// Unit computes pads. It is safe for concurrent use after construction
// because the underlying ciphers are read-only once expanded.
type Unit struct {
	baselineEnc *aes.Cipher
	baselineMac *aes.Cipher
	ctrEnc      *aes.Cipher
	ctrMac      *aes.Cipher
	addrEnc     *aes.Cipher
	addrMac     *aes.Cipher
	macKeys     gf.Keys
}

// NewUnit builds an OTP unit from derived keys. keyLen 16 selects AES-128,
// 32 selects AES-256 (the paper's 15 ns vs 22 ns sensitivity point).
func NewUnit(k Keys) (*Unit, error) {
	mk := func(key []byte) (*aes.Cipher, error) { return aes.New(key) }
	var u Unit
	var err error
	if u.baselineEnc, err = mk(k.BaselineEnc); err != nil {
		return nil, err
	}
	if u.baselineMac, err = mk(k.BaselineMac); err != nil {
		return nil, err
	}
	if u.ctrEnc, err = mk(k.CtrEnc); err != nil {
		return nil, err
	}
	if u.ctrMac, err = mk(k.CtrMac); err != nil {
		return nil, err
	}
	if u.addrEnc, err = mk(k.AddrEnc); err != nil {
		return nil, err
	}
	if u.addrMac, err = mk(k.AddrMac); err != nil {
		return nil, err
	}
	u.macKeys = k.Mac
	return &u, nil
}

// MustNewUnit is NewUnit but panics on error.
func MustNewUnit(k Keys) *Unit {
	u, err := NewUnit(k)
	if err != nil {
		panic(err)
	}
	return u
}

// MacKeys exposes the dot-product key vector for MAC computation.
func (u *Unit) MacKeys() *gf.Keys { return &u.macKeys }

// CounterMask keeps counters within the architectural 56-bit width.
const CounterMask = (uint64(1) << 56) - 1

// --- RMCC split path (Figure 11) ---

// CounterOnly computes the memoizable counter-only AES results for a
// counter value: AES over (0^72 ‖ ctr56) under the encryption-side and
// MAC-side counter keys. This is the slow (10/14-round) computation the
// memoization table short-circuits.
func (u *Unit) CounterOnly(ctr uint64) CtrResult {
	ctr &= CounterMask
	var r CtrResult
	r.Enc.Hi, r.Enc.Lo = u.ctrEnc.EncryptWords(0, ctr)
	r.Mac.Hi, r.Mac.Lo = u.ctrMac.EncryptWords(0, ctr)
	return r
}

// addrInput forms the address-side AES input: the 64-bit block address in
// the high limb (addr64 ‖ 0^64 per §IV-D1), with the 2-bit word index mixed
// into the otherwise-zero low limb so each 128-bit word of the block gets a
// distinct pad.
func addrInput(addr uint64, word int) (hi, lo uint64) {
	return addr, uint64(word)
}

// AddressOnlyEnc computes the encryption-side address-only AES result for
// one 128-bit word of the block at addr. The MC can always compute this
// immediately: addresses never miss.
func (u *Unit) AddressOnlyEnc(addr uint64, word int) Word128 {
	hi, lo := addrInput(addr, word)
	var w Word128
	w.Hi, w.Lo = u.addrEnc.EncryptWords(hi, lo)
	return w
}

// AddressOnlyMac computes the MAC-side address-only AES result for the
// block at addr.
func (u *Unit) AddressOnlyMac(addr uint64) Word128 {
	hi, lo := addrInput(addr, 0)
	var w Word128
	w.Hi, w.Lo = u.addrMac.EncryptWords(hi, lo)
	return w
}

// Combine merges a counter-only result and an address-only result into a
// pad word by truncated carry-less multiplication (the 1 ns hardware step).
func Combine(ctrRes, addrRes Word128) Word128 {
	return clmul.MulTrunc(ctrRes, addrRes)
}

// RMCCPad derives the full 512-bit encryption pad for a block from a
// (possibly memoized) counter-only result.
func (u *Unit) RMCCPad(ctrRes CtrResult, addr uint64) Pad {
	var p Pad
	for w := 0; w < WordsPerBlock; w++ {
		p[w] = Combine(ctrRes.Enc, u.AddressOnlyEnc(addr, w))
	}
	return p
}

// RMCCMacOTP derives the 56-bit MAC pad contribution for a block.
func (u *Unit) RMCCMacOTP(ctrRes CtrResult, addr uint64) uint64 {
	w := Combine(ctrRes.Mac, u.AddressOnlyMac(addr))
	return gf.FoldOTP(w.Hi, w.Lo)
}

// --- Baseline SGX path (Figure 2) ---

// mu is the fixed domain-separation constant in the baseline AES input.
const mu = 0x5A

// BaselinePad derives the 512-bit encryption pad with one AES call per
// 128-bit word, each taking (µ ‖ addr ‖ wordIndex ‖ counter) as input.
func (u *Unit) BaselinePad(addr, ctr uint64) Pad {
	var p Pad
	for w := 0; w < WordsPerBlock; w++ {
		hi := uint64(mu)<<56 | (addr>>8)&0x00ffffffffffffff
		lo := (addr&0xff)<<56 | uint64(w)<<54 | (ctr & CounterMask)
		var pw Word128
		pw.Hi, pw.Lo = u.baselineEnc.EncryptWords(hi, lo)
		p[w] = pw
	}
	return p
}

// BaselineMacOTP derives the 56-bit MAC pad contribution with a single AES
// call under the MAC key.
func (u *Unit) BaselineMacOTP(addr, ctr uint64) uint64 {
	hi := uint64(mu)<<56 | (addr>>8)&0x00ffffffffffffff
	lo := (addr&0xff)<<56 | (ctr & CounterMask)
	h, l := u.baselineMac.EncryptWords(hi, lo)
	return gf.FoldOTP(h, l)
}

// --- MAC over a block ---

// BlockMAC computes the stored 56-bit MAC for a block's eight words given
// the 56-bit OTP contribution (from RMCCMacOTP or BaselineMacOTP).
func (u *Unit) BlockMAC(words *[8]uint64, otp56 uint64) uint64 {
	return gf.MAC(words, &u.macKeys, otp56)
}
