// Package clmul implements carry-less (polynomial, GF(2)[x]) multiplication
// of 128-bit operands and the truncated variant RMCC uses to combine a
// counter-only AES result with an address-only AES result into a one-time
// pad (paper Figure 11).
//
// A full 128×128 carry-less product is 255 bits; RMCC keeps the middle 128
// bits. The truncation discards 127 bits of information, which is what makes
// the OTP construction non-invertible (paper §IV-D1): from a known OTP an
// attacker cannot factor back the two AES operands.
package clmul

import "math/bits"

// Word128 is a 128-bit value as two 64-bit limbs, Hi holding bits 127..64.
type Word128 struct {
	Hi, Lo uint64
}

// Xor returns the bitwise XOR of w and o.
func (w Word128) Xor(o Word128) Word128 {
	return Word128{Hi: w.Hi ^ o.Hi, Lo: w.Lo ^ o.Lo}
}

// IsZero reports whether all 128 bits are zero.
func (w Word128) IsZero() bool { return w.Hi == 0 && w.Lo == 0 }

// Word256 is a 256-bit value as four 64-bit limbs, limb 3 most significant.
// The top bit (bit 255) is always zero for a 128×128 carry-less product.
type Word256 struct {
	W3, W2, W1, W0 uint64
}

// mul64 computes the 128-bit carry-less product of two 64-bit polynomials.
func mul64(a, b uint64) (hi, lo uint64) {
	// Schoolbook over bits of b, 4 bits at a time would be faster, but the
	// bit-serial form is clear and this code is off the simulated clock.
	for i := 0; i < 64; i++ {
		if b&(1<<uint(i)) != 0 {
			lo ^= a << uint(i)
			if i != 0 {
				hi ^= a >> uint(64-i)
			}
		}
	}
	return hi, lo
}

// Mul returns the full 255-bit carry-less product of a and b.
//
// Karatsuba over GF(2): with a = aH·x^64 + aL and b = bH·x^64 + bL,
// a·b = aH·bH·x^128 + ((aH+aL)(bH+bL) + aH·bH + aL·bL)·x^64 + aL·bL.
func Mul(a, b Word128) Word256 {
	hh1, hh0 := mul64(a.Hi, b.Hi)
	ll1, ll0 := mul64(a.Lo, b.Lo)
	mh, ml := mul64(a.Hi^a.Lo, b.Hi^b.Lo)
	mh ^= hh1 ^ ll1
	ml ^= hh0 ^ ll0
	return Word256{
		W3: hh1,
		W2: hh0 ^ mh,
		W1: ll1 ^ ml,
		W0: ll0,
	}
}

// TruncMiddle returns bits 191..64 of the 256-bit product, i.e. the middle
// 128 bits RMCC keeps as the OTP.
func TruncMiddle(p Word256) Word128 {
	return Word128{Hi: p.W2, Lo: p.W1}
}

// MulTrunc is the RMCC OTP combine: the truncated-middle carry-less product
// of the counter-only and address-only AES results. The hardware analog is a
// truncated 128×128→128 carry-less multiplier (paper §IV-E: ~12K XOR gates,
// 7 XOR + 3 inverter gate depth, ~1 ns).
func MulTrunc(a, b Word128) Word128 {
	return TruncMiddle(Mul(a, b))
}

// Degree returns the degree of the polynomial w (index of its highest set
// bit), or -1 if w is zero. Used by tests to validate ring identities.
func Degree(w Word128) int {
	if w.Hi != 0 {
		return 127 - bits.LeadingZeros64(w.Hi)
	}
	if w.Lo != 0 {
		return 63 - bits.LeadingZeros64(w.Lo)
	}
	return -1
}

// PopCount returns the number of set bits across the 128-bit value.
func PopCount(w Word128) int {
	return bits.OnesCount64(w.Hi) + bits.OnesCount64(w.Lo)
}
