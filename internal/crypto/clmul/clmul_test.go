package clmul

import (
	"testing"
	"testing/quick"
)

func TestMul64KnownValues(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{2, 3, 0, 6},                   // x * (x+1) = x^2 + x
		{3, 3, 0, 5},                   // (x+1)^2 = x^2 + 1 over GF(2)
		{1 << 63, 2, 1, 0},             // x^63 * x = x^64
		{1 << 63, 1 << 63, 1 << 62, 0}, // x^63 * x^63 = x^126
		{0xffffffffffffffff, 1, 0, 0xffffffffffffffff},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		a := Word128{a1, a0}
		b := Word128{b1, b0}
		return Mul(a, b) == Mul(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributive(t *testing.T) {
	// a*(b+c) == a*b + a*c where + is XOR (GF(2)[x] ring law).
	f := func(a0, a1, b0, b1, c0, c1 uint64) bool {
		a := Word128{a1, a0}
		b := Word128{b1, b0}
		c := Word128{c1, c0}
		left := Mul(a, b.Xor(c))
		ab := Mul(a, b)
		ac := Mul(a, c)
		sum := Word256{ab.W3 ^ ac.W3, ab.W2 ^ ac.W2, ab.W1 ^ ac.W1, ab.W0 ^ ac.W0}
		return left == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentity(t *testing.T) {
	one := Word128{0, 1}
	f := func(a0, a1 uint64) bool {
		a := Word128{a1, a0}
		p := Mul(a, one)
		return p.W3 == 0 && p.W2 == 0 && p.W1 == a.Hi && p.W0 == a.Lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulZero(t *testing.T) {
	f := func(a0, a1 uint64) bool {
		p := Mul(Word128{a1, a0}, Word128{})
		return p == Word256{}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAdds(t *testing.T) {
	// deg(a*b) = deg(a)+deg(b) for nonzero polynomials over GF(2).
	f := func(a0, a1, b0, b1 uint64) bool {
		a := Word128{a1, a0}
		b := Word128{b1, b0}
		if a.IsZero() || b.IsZero() {
			return true
		}
		p := Mul(a, b)
		got := -1
		limbs := []uint64{p.W3, p.W2, p.W1, p.W0}
		for i, l := range limbs {
			if l != 0 {
				d := 63
				for l>>uint(d) == 0 {
					d--
				}
				got = (3-i)*64 + d
				break
			}
		}
		return got == Degree(a)+Degree(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncMiddleBits(t *testing.T) {
	p := Word256{W3: 0xAAAA, W2: 0xBBBB, W1: 0xCCCC, W0: 0xDDDD}
	m := TruncMiddle(p)
	if m.Hi != 0xBBBB || m.Lo != 0xCCCC {
		t.Fatalf("TruncMiddle = %+v, want Hi=0xBBBB Lo=0xCCCC", m)
	}
}

// TestMulTruncLossy verifies the security-relevant property from §IV-D1:
// distinct operand pairs can map to the same truncated product, i.e. the
// combine is not injective, while full products remain distinct.
func TestMulTruncLossy(t *testing.T) {
	// a*x and (a<<64 over Lo boundary) style collisions are hard to craft by
	// hand; instead verify information loss dimensionally: the low 64 bits of
	// the full product do not affect the result.
	a := Word128{0, 3}
	b1 := Word128{0, 1} // product 3
	b2 := Word128{0, 0} // product 0
	if MulTrunc(a, b1) != MulTrunc(a, b2) {
		t.Fatal("products differing only below bit 64 should truncate equally")
	}
	if Mul(a, b1) == Mul(a, b2) {
		t.Fatal("full products should differ")
	}
}

// TestPrefixingBreaksCommutativityExploit reproduces the paper's type-A
// repeat elimination: AES inputs are formed as (0^72 || ctr) for counters
// and (addr || 0^64) for addresses, so even though CLMUL is commutative,
// swapping the roles of an address and counter with equal bit patterns feeds
// different AES inputs. Here we verify at the combine layer that the padded
// operand domains are disjoint.
func TestPrefixingBreaksCommutativityExploit(t *testing.T) {
	v := uint64(0x123456)
	ctrOperand := Word128{Hi: 0, Lo: v}  // zero-prefixed counter
	addrOperand := Word128{Hi: v, Lo: 0} // zero-suffixed address
	if ctrOperand == addrOperand {
		t.Fatal("padding failed to separate domains")
	}
	// Same numeric value in the two roles must not yield identical operands.
	if MulTrunc(ctrOperand, addrOperand) != MulTrunc(addrOperand, ctrOperand) {
		t.Fatal("CLMUL must itself be commutative (the defense is padding, not the multiply)")
	}
}

func TestPopCount(t *testing.T) {
	if got := PopCount(Word128{Hi: ^uint64(0), Lo: 1}); got != 65 {
		t.Fatalf("PopCount = %d, want 65", got)
	}
}

func BenchmarkMulTrunc(b *testing.B) {
	x := Word128{0x0123456789abcdef, 0xfedcba9876543210}
	y := Word128{0xdeadbeefcafebabe, 0x0f1e2d3c4b5a6978}
	for i := 0; i < b.N; i++ {
		x = MulTrunc(x, y)
	}
	_ = x
}
