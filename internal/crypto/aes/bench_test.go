package aes

import "testing"

// BenchmarkAESEncrypt measures the T-table fast path on the OTP unit's
// word form — the call the memoization-table fill and every pad derivation
// bottom out in. Must be zero allocs/op.
func BenchmarkAESEncrypt(b *testing.B) {
	c := MustNew([]byte("0123456789abcdef"))
	b.ReportAllocs()
	var hi, lo uint64 = 0x0011223344556677, 0x8899aabbccddeeff
	for i := 0; i < b.N; i++ {
		hi, lo = c.EncryptWords(hi, lo)
	}
	sinkHi, sinkLo = hi, lo
}

// BenchmarkAESEncryptBytes measures the byte-slice fast path.
func BenchmarkAESEncryptBytes(b *testing.B) {
	c := MustNew([]byte("0123456789abcdef"))
	var buf [16]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf[:], buf[:])
	}
}

// BenchmarkAESEncryptReference measures the byte-wise FIPS-197 reference
// transform — the denominator of the T-table speedup recorded in
// docs/PERFORMANCE.md.
func BenchmarkAESEncryptReference(b *testing.B) {
	c := MustNew([]byte("0123456789abcdef"))
	var buf [16]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EncryptReference(buf[:], buf[:])
	}
}

// BenchmarkAESKeyExpansionCached measures New on an already-cached key.
func BenchmarkAESKeyExpansionCached(b *testing.B) {
	key := []byte("fedcba9876543210")
	MustNew(key)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustNew(key)
	}
}

var sinkHi, sinkLo uint64
