package aes

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks Decrypt(Encrypt(x)) == x and ciphertext != plaintext
// for arbitrary keys and blocks.
func FuzzRoundTrip(f *testing.F) {
	f.Add(make([]byte, 16), make([]byte, 16))
	f.Add(bytes.Repeat([]byte{0xff}, 32), bytes.Repeat([]byte{0xa5}, 16))
	f.Add([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
	f.Fuzz(func(t *testing.T, key, block []byte) {
		if len(key) != 16 && len(key) != 32 {
			if _, err := New(key); err == nil {
				t.Fatalf("invalid key length %d accepted", len(key))
			}
			return
		}
		if len(block) < 16 {
			return
		}
		block = block[:16]
		c := MustNew(key)
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, block)
		c.Decrypt(pt, ct)
		if !bytes.Equal(pt, block) {
			t.Fatalf("round trip failed: %x -> %x -> %x", block, ct, pt)
		}
		if bytes.Equal(ct, block) {
			t.Fatalf("ciphertext equals plaintext for key %x", key)
		}
	})
}
