// Package aes implements the Advanced Encryption Standard (FIPS-197) from
// scratch for AES-128 and AES-256.
//
// The secure-memory engine uses AES in counter mode to derive one-time pads
// (OTPs), so only the forward (encryption) transform sits on the simulated
// critical path; decryption is provided for completeness and for tests.
//
// Two encryption paths exist. Encrypt/EncryptWords use precomputed T-tables
// (four 1 KB lookup tables folding SubBytes, ShiftRows and MixColumns into
// one XOR chain per column) so the Go-level cost of the millions of pad
// derivations a simulation performs stays small. EncryptReference is the
// original byte-wise FIPS-197 transform, kept as the correctness oracle:
// tests cross-check the two on fixed vectors and random blocks. Key
// schedules are cached per key, since simulations build many engines from
// identical derived keys. The simulator still models AES latency
// architecturally (15 ns for AES-128, 22 ns for AES-256 per the paper's
// 7 nm synthesis numbers); Go-level speed only affects wall-clock.
//
// No path attempts constant-time execution; this is a simulator, not a
// production cipher.
package aes

import (
	"fmt"
	"sync"
)

// BlockSize is the AES block size in bytes. AES has a fixed 128-bit block
// regardless of key size.
const BlockSize = 16

// Rounds returns the number of AES rounds for a key of the given byte length
// (10 for AES-128, 14 for AES-256).
func Rounds(keyLen int) int {
	switch keyLen {
	case 16:
		return 10
	case 32:
		return 14
	default:
		return 0
	}
}

// Cipher is an AES block cipher with an expanded key schedule.
type Cipher struct {
	rounds int
	enc    []uint32 // round keys, 4 column-major words per round, flat
}

// sbox is the AES substitution box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// invSbox is the inverse S-box, derived from sbox at init time.
var invSbox [256]byte

// te0..te3 are the encryption T-tables: te0[x] packs the MixColumns column
// produced by S-box output sbox[x] in row position 0; te1..te3 are the same
// column rotated for row positions 1..3. One full round reduces to four
// table lookups and four XORs per column.
var te0, te1, te2, te3 [256]uint32

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := byte(xtimeByte(s))
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
	}
}

// schedCache memoizes expanded key schedules by key material. Simulations
// derive identical key sets for every engine they build (same KeyMaster),
// so the FIPS-197 expansion runs once per distinct key process-wide.
// Cached schedules are read-only and safely shared across Ciphers and
// goroutines.
var schedCache sync.Map // string(key) -> []uint32

// New creates an AES cipher from a 16-byte (AES-128) or 32-byte (AES-256)
// key.
func New(key []byte) (*Cipher, error) {
	rounds := Rounds(len(key))
	if rounds == 0 {
		return nil, fmt.Errorf("aes: invalid key size %d (want 16 or 32)", len(key))
	}
	c := &Cipher{rounds: rounds}
	if sched, ok := schedCache.Load(string(key)); ok {
		c.enc = sched.([]uint32)
		return c, nil
	}
	c.expandKey(key)
	schedCache.Store(string(key), c.enc)
	return c, nil
}

// MustNew is New but panics on error, for use with known-good key material.
func MustNew(key []byte) *Cipher {
	c, err := New(key)
	if err != nil {
		panic(err)
	}
	return c
}

// BlockSize returns the AES block size (16), satisfying the conventional
// block-cipher interface shape.
func (c *Cipher) BlockSize() int { return BlockSize }

// Rounds returns the number of rounds this key schedule uses.
func (c *Cipher) Rounds() int { return c.rounds }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// expandKey implements the FIPS-197 key schedule.
func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	total := 4 * (c.rounds + 1)
	w := make([]uint32, total)
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1)
	for i := nk; i < total; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ rcon<<24
			rcon = xtimeByte(byte(rcon))
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.enc = w
}

// xtimeByte multiplies a byte by x in GF(2^8) with the AES polynomial.
func xtimeByte(b byte) uint32 {
	v := uint32(b) << 1
	if b&0x80 != 0 {
		v ^= 0x11b
	}
	return v & 0xff
}

func mulGF8(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// state is the AES state as 16 bytes in column-major order (FIPS-197 layout:
// byte i goes to row i%4, column i/4).
type state [16]byte

func (s *state) addRoundKey(rk []uint32) {
	for col := 0; col < 4; col++ {
		w := rk[col]
		s[4*col+0] ^= byte(w >> 24)
		s[4*col+1] ^= byte(w >> 16)
		s[4*col+2] ^= byte(w >> 8)
		s[4*col+3] ^= byte(w)
	}
}

func (s *state) subBytes() {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func (s *state) invSubBytes() {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

// shiftRows rotates row r left by r positions. With column-major layout, row
// r is bytes {r, r+4, r+8, r+12}.
func (s *state) shiftRows() {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func (s *state) invShiftRows() {
	s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
	s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
	s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mulGF8(a0, 2) ^ mulGF8(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ mulGF8(a1, 2) ^ mulGF8(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ mulGF8(a2, 2) ^ mulGF8(a3, 3)
		s[4*c+3] = mulGF8(a0, 3) ^ a1 ^ a2 ^ mulGF8(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mulGF8(a0, 14) ^ mulGF8(a1, 11) ^ mulGF8(a2, 13) ^ mulGF8(a3, 9)
		s[4*c+1] = mulGF8(a0, 9) ^ mulGF8(a1, 14) ^ mulGF8(a2, 11) ^ mulGF8(a3, 13)
		s[4*c+2] = mulGF8(a0, 13) ^ mulGF8(a1, 9) ^ mulGF8(a2, 14) ^ mulGF8(a3, 11)
		s[4*c+3] = mulGF8(a0, 11) ^ mulGF8(a1, 13) ^ mulGF8(a2, 9) ^ mulGF8(a3, 14)
	}
}

// Encrypt encrypts exactly one 16-byte block from src into dst using the
// T-table fast path. dst and src may overlap. It panics if either is
// shorter than BlockSize.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	s0 := uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])
	s1 := uint32(src[4])<<24 | uint32(src[5])<<16 | uint32(src[6])<<8 | uint32(src[7])
	s2 := uint32(src[8])<<24 | uint32(src[9])<<16 | uint32(src[10])<<8 | uint32(src[11])
	s3 := uint32(src[12])<<24 | uint32(src[13])<<16 | uint32(src[14])<<8 | uint32(src[15])
	s0, s1, s2, s3 = c.encryptColumns(s0, s1, s2, s3)
	dst[0], dst[1], dst[2], dst[3] = byte(s0>>24), byte(s0>>16), byte(s0>>8), byte(s0)
	dst[4], dst[5], dst[6], dst[7] = byte(s1>>24), byte(s1>>16), byte(s1>>8), byte(s1)
	dst[8], dst[9], dst[10], dst[11] = byte(s2>>24), byte(s2>>16), byte(s2>>8), byte(s2)
	dst[12], dst[13], dst[14], dst[15] = byte(s3>>24), byte(s3>>16), byte(s3>>8), byte(s3)
}

// encryptColumns runs the full cipher on a state held as four big-endian
// column words — the shared core of Encrypt and EncryptWords.
func (c *Cipher) encryptColumns(s0, s1, s2, s3 uint32) (uint32, uint32, uint32, uint32) {
	xk := c.enc
	s0 ^= xk[0]
	s1 ^= xk[1]
	s2 ^= xk[2]
	s3 ^= xk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ xk[k]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ xk[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ xk[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ xk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows without MixColumns.
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	return t0 ^ xk[k], t1 ^ xk[k+1], t2 ^ xk[k+2], t3 ^ xk[k+3]
}

// EncryptReference encrypts one block with the byte-wise FIPS-197 transform
// (SubBytes/ShiftRows/MixColumns as written in the standard). It is the
// correctness oracle for the T-table path and the baseline the AES
// micro-benchmarks compare against.
func (c *Cipher) EncryptReference(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.enc[0:4])
	for r := 1; r < c.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[4*r : 4*r+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.enc[4*c.rounds : 4*c.rounds+4])
	copy(dst[:BlockSize], s[:])
}

// Decrypt decrypts exactly one 16-byte block from src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.enc[4*c.rounds : 4*c.rounds+4])
	for r := c.rounds - 1; r >= 1; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.enc[4*r : 4*r+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.enc[0:4])
	copy(dst[:BlockSize], s[:])
}

// EncryptWords encrypts a 128-bit input given as two 64-bit halves and
// returns the result as two 64-bit halves (big-endian packing). This is the
// form the OTP unit uses: the secure-memory data path works on 64-bit words,
// not byte slices. It allocates nothing and never touches a byte buffer.
func (c *Cipher) EncryptWords(hi, lo uint64) (outHi, outLo uint64) {
	s0, s1, s2, s3 := c.encryptColumns(
		uint32(hi>>32), uint32(hi), uint32(lo>>32), uint32(lo))
	return uint64(s0)<<32 | uint64(s1), uint64(s2)<<32 | uint64(s3)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
