package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"rmcc/internal/rng"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestFIPS197AES128 checks the FIPS-197 Appendix C.1 vector.
func TestFIPS197AES128(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	pt := mustHex(t, "00112233445566778899aabbccddeeff")
	want := mustHex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c := MustNew(key)
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("AES-128 encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 16)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("AES-128 decrypt = %x, want %x", back, pt)
	}
}

// TestFIPS197AES256 checks the FIPS-197 Appendix C.3 vector.
func TestFIPS197AES256(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	pt := mustHex(t, "00112233445566778899aabbccddeeff")
	want := mustHex(t, "8ea2b7ca516745bfeafc49904b496089")
	c := MustNew(key)
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("AES-256 encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 16)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("AES-256 decrypt = %x, want %x", back, pt)
	}
}

// TestNISTSP800_38A_AES128ECB checks the first block of the SP 800-38A
// ECB-AES128 example vectors (a second, independent source of truth).
func TestNISTSP800_38A_AES128ECB(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := mustHex(t, "6bc1bee22e409f96e93d7e117393172a")
	want := mustHex(t, "3ad77bb40d7a3660a89ecaf32466ef97")
	c := MustNew(key)
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
}

func TestRoundCounts(t *testing.T) {
	if c := MustNew(make([]byte, 16)); c.Rounds() != 10 {
		t.Fatalf("AES-128 rounds = %d, want 10", c.Rounds())
	}
	if c := MustNew(make([]byte, 32)); c.Rounds() != 14 {
		t.Fatalf("AES-256 rounds = %d, want 14", c.Rounds())
	}
}

func TestInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24, 31, 33} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Fatalf("key size %d unexpectedly accepted", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, keyLen := range []int{16, 32} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		c := MustNew(key)
		f := func(hi, lo uint64) bool {
			var pt, ct, back [16]byte
			putU64(pt[0:8], hi)
			putU64(pt[8:16], lo)
			c.Encrypt(ct[:], pt[:])
			c.Decrypt(back[:], ct[:])
			return back == pt && ct != pt
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("keyLen %d: %v", keyLen, err)
		}
	}
}

func TestEncryptWordsMatchesBytes(t *testing.T) {
	c := MustNew(mustHex(t, "000102030405060708090a0b0c0d0e0f"))
	f := func(hi, lo uint64) bool {
		var in, out [16]byte
		putU64(in[0:8], hi)
		putU64(in[8:16], lo)
		c.Encrypt(out[:], in[:])
		oh, ol := c.EncryptWords(hi, lo)
		return oh == getU64(out[0:8]) && ol == getU64(out[8:16])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEncryptMatchesReference cross-checks the T-table fast path against
// the byte-wise FIPS-197 reference transform on random keys and blocks,
// for both key sizes.
func TestEncryptMatchesReference(t *testing.T) {
	r := rng.New(7)
	for _, keyLen := range []int{16, 32} {
		key := make([]byte, keyLen)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		c := MustNew(key)
		f := func(hi, lo uint64) bool {
			var pt, fast, ref [16]byte
			putU64(pt[0:8], hi)
			putU64(pt[8:16], lo)
			c.Encrypt(fast[:], pt[:])
			c.EncryptReference(ref[:], pt[:])
			return fast == ref
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("keyLen %d: fast path diverges from reference: %v", keyLen, err)
		}
	}
}

// TestKeyScheduleCache checks that two Ciphers built from the same key
// share one expanded schedule, and that distinct keys do not.
func TestKeyScheduleCache(t *testing.T) {
	key := mustHex(t, "8899aabbccddeeff00112233445566ff")
	a := MustNew(key)
	b := MustNew(key)
	if &a.enc[0] != &b.enc[0] {
		t.Fatal("same key did not share a cached schedule")
	}
	key[0] ^= 1
	c := MustNew(key)
	if &a.enc[0] == &c.enc[0] {
		t.Fatal("distinct keys shared a schedule")
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	c1 := MustNew(mustHex(t, "00000000000000000000000000000000"))
	c2 := MustNew(mustHex(t, "00000000000000000000000000000001"))
	pt := make([]byte, 16)
	a := make([]byte, 16)
	b := make([]byte, 16)
	c1.Encrypt(a, pt)
	c2.Encrypt(b, pt)
	if bytes.Equal(a, b) {
		t.Fatal("distinct keys produced identical ciphertext")
	}
}

// TestAvalanche flips one plaintext bit and requires roughly half of the
// ciphertext bits to change, a basic diffusion sanity check.
func TestAvalanche(t *testing.T) {
	c := MustNew(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	base := make([]byte, 16)
	flipped := make([]byte, 16)
	copy(flipped, base)
	flipped[0] ^= 0x01
	a := make([]byte, 16)
	b := make([]byte, 16)
	c.Encrypt(a, base)
	c.Encrypt(b, flipped)
	diff := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			diff++
			x &= x - 1
		}
	}
	if diff < 40 || diff > 88 {
		t.Fatalf("avalanche: %d/128 bits changed, expected ~64", diff)
	}
}

func TestShiftRowsInverse(t *testing.T) {
	f := func(in [16]byte) bool {
		s := state(in)
		s.shiftRows()
		s.invShiftRows()
		return s == state(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixColumnsInverse(t *testing.T) {
	f := func(in [16]byte) bool {
		s := state(in)
		s.mixColumns()
		s.invMixColumns()
		return s == state(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSboxIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range sbox {
		if seen[v] {
			t.Fatalf("sbox value %#x repeated", v)
		}
		seen[v] = true
	}
	for i := 0; i < 256; i++ {
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox broken at %d", i)
		}
	}
}

func BenchmarkEncryptAES128(b *testing.B) {
	c := MustNew(make([]byte, 16))
	var buf [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf[:], buf[:])
	}
}

func BenchmarkEncryptAES256(b *testing.B) {
	c := MustNew(make([]byte, 32))
	var buf [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf[:], buf[:])
	}
}
