// Package randtest implements a subset of the NIST SP 800-22 statistical
// test suite for random and pseudorandom number generators.
//
// The paper (§IV-D1) validates the RMCC OTP construction empirically: "Our
// OTPs pass NIST randomness tests at the same rate as the two streams of AES
// outputs used to calculate the OTPs." This package provides the frequency
// (monobit), block-frequency, runs, longest-run-of-ones, cumulative-sums and
// serial tests, which are the suite's core battery for short sequences, so
// the repository can reproduce that claim.
//
// Each test returns a p-value; a sequence passes a test at significance
// level α = 0.01 when p ≥ 0.01.
package randtest

import (
	"fmt"
	"math"
)

// Alpha is the significance level used by Pass.
const Alpha = 0.01

// Bits is a bit sequence stored one bit per byte (0 or 1) for clarity.
type Bits []byte

// FromBytes expands a byte string into a Bits sequence, MSB first.
func FromBytes(data []byte) Bits {
	out := make(Bits, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, (b>>uint(i))&1)
		}
	}
	return out
}

// FromUint64s expands 64-bit words into bits, MSB first.
func FromUint64s(words []uint64) Bits {
	out := make(Bits, 0, len(words)*64)
	for _, w := range words {
		for i := 63; i >= 0; i-- {
			out = append(out, byte(w>>uint(i))&1)
		}
	}
	return out
}

// Result is the outcome of one statistical test.
type Result struct {
	Name   string
	PValue float64
}

// Pass reports whether the test passed at the α = 0.01 level.
func (r Result) Pass() bool { return r.PValue >= Alpha }

func (r Result) String() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-22s p=%.4f %s", r.Name, r.PValue, verdict)
}

// Frequency is the NIST frequency (monobit) test: the proportion of ones
// should be close to 1/2.
func Frequency(bits Bits) Result {
	n := len(bits)
	s := 0
	for _, b := range bits {
		if b == 1 {
			s++
		} else {
			s--
		}
	}
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(n))
	p := math.Erfc(sObs / math.Sqrt2)
	return Result{Name: "Frequency", PValue: p}
}

// BlockFrequency is the NIST block-frequency test with block size m.
func BlockFrequency(bits Bits, m int) Result {
	n := len(bits)
	nBlocks := n / m
	if nBlocks == 0 {
		return Result{Name: "BlockFrequency", PValue: 0}
	}
	chi := 0.0
	for i := 0; i < nBlocks; i++ {
		ones := 0
		for j := 0; j < m; j++ {
			if bits[i*m+j] == 1 {
				ones++
			}
		}
		pi := float64(ones) / float64(m)
		d := pi - 0.5
		chi += d * d
	}
	chi *= 4 * float64(m)
	p := igamc(float64(nBlocks)/2, chi/2)
	return Result{Name: "BlockFrequency", PValue: p}
}

// Runs is the NIST runs test: the number of uninterrupted runs of identical
// bits should match the expectation for a random sequence.
func Runs(bits Bits) Result {
	n := len(bits)
	ones := 0
	for _, b := range bits {
		if b == 1 {
			ones++
		}
	}
	pi := float64(ones) / float64(n)
	// Prerequisite frequency check from the NIST spec.
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		return Result{Name: "Runs", PValue: 0}
	}
	v := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			v++
		}
	}
	num := math.Abs(float64(v) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	p := math.Erfc(num / den)
	return Result{Name: "Runs", PValue: p}
}

// LongestRun is the NIST longest-run-of-ones test for sequences of at least
// 128 bits (uses the M=8, K=3 parameterization for n < 6272, M=128 for
// larger inputs per the spec's table).
func LongestRun(bits Bits) Result {
	n := len(bits)
	var m int
	var vCats []int
	var probs []float64
	switch {
	case n < 128:
		return Result{Name: "LongestRun", PValue: 0}
	case n < 6272:
		m = 8
		vCats = []int{1, 2, 3, 4}
		probs = []float64{0.2148, 0.3672, 0.2305, 0.1875}
	case n < 750000:
		m = 128
		vCats = []int{4, 5, 6, 7, 8, 9}
		probs = []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	default:
		m = 10000
		vCats = []int{10, 11, 12, 13, 14, 15, 16}
		probs = []float64{0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727}
	}
	nBlocks := n / m
	counts := make([]int, len(vCats))
	for i := 0; i < nBlocks; i++ {
		longest, cur := 0, 0
		for j := 0; j < m; j++ {
			if bits[i*m+j] == 1 {
				cur++
				if cur > longest {
					longest = cur
				}
			} else {
				cur = 0
			}
		}
		idx := 0
		for idx < len(vCats)-1 && longest > vCats[idx] {
			idx++
		}
		if longest < vCats[0] {
			idx = 0
		}
		counts[idx]++
	}
	chi := 0.0
	for i := range counts {
		exp := float64(nBlocks) * probs[i]
		d := float64(counts[i]) - exp
		chi += d * d / exp
	}
	p := igamc(float64(len(vCats)-1)/2, chi/2)
	return Result{Name: "LongestRun", PValue: p}
}

// CumulativeSums is the NIST cumulative-sums (forward) test.
func CumulativeSums(bits Bits) Result {
	n := len(bits)
	s, z := 0, 0
	for _, b := range bits {
		if b == 1 {
			s++
		} else {
			s--
		}
		if abs := s; abs < 0 {
			abs = -abs
			if abs > z {
				z = abs
			}
		} else if abs > z {
			z = abs
		}
	}
	if z == 0 {
		return Result{Name: "CumulativeSums", PValue: 0}
	}
	fn := float64(n)
	fz := float64(z)
	sum1 := 0.0
	for k := (-n/z + 1) / 4; k <= (n/z-1)/4; k++ {
		sum1 += normCDF((4*float64(k)+1)*fz/math.Sqrt(fn)) -
			normCDF((4*float64(k)-1)*fz/math.Sqrt(fn))
	}
	sum2 := 0.0
	for k := (-n/z - 3) / 4; k <= (n/z-1)/4; k++ {
		sum2 += normCDF((4*float64(k)+3)*fz/math.Sqrt(fn)) -
			normCDF((4*float64(k)+1)*fz/math.Sqrt(fn))
	}
	p := 1 - sum1 + sum2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return Result{Name: "CumulativeSums", PValue: p}
}

// Serial is the NIST serial test with pattern length m (∇ψ²m statistic).
func Serial(bits Bits, m int) Result {
	psi := func(mm int) float64 {
		if mm == 0 {
			return 0
		}
		counts := make([]int, 1<<uint(mm))
		n := len(bits)
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < mm; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		sum := 0.0
		for _, c := range counts {
			sum += float64(c) * float64(c)
		}
		return sum*float64(int(1)<<uint(mm))/float64(n) - float64(n)
	}
	d1 := psi(m) - psi(m-1)
	d2 := psi(m) - 2*psi(m-1) + psi(m-2)
	p1 := igamc(float64(int(1)<<uint(m-1))/2, d1/2)
	p2 := igamc(float64(int(1)<<uint(m-2))/2, d2/2)
	p := math.Min(p1, p2)
	return Result{Name: "Serial", PValue: p}
}

// ApproximateEntropy is the NIST approximate-entropy test with pattern
// length m: it compares the frequencies of overlapping m- and (m+1)-bit
// patterns; regular sequences have low approximate entropy.
func ApproximateEntropy(bits Bits, m int) Result {
	n := len(bits)
	phi := func(mm int) float64 {
		if mm == 0 {
			return 0
		}
		counts := make([]int, 1<<uint(mm))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < mm; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		sum := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				sum += p * math.Log(p)
			}
		}
		return sum
	}
	apEn := phi(m) - phi(m+1)
	chi := 2 * float64(n) * (math.Ln2 - apEn)
	p := igamc(float64(int(1)<<uint(m-1)), chi/2)
	return Result{Name: "ApproximateEntropy", PValue: p}
}

// Battery runs the full set of implemented tests with standard parameters.
func Battery(bits Bits) []Result {
	return []Result{
		Frequency(bits),
		BlockFrequency(bits, 128),
		Runs(bits),
		LongestRun(bits),
		CumulativeSums(bits),
		Serial(bits, 5),
		ApproximateEntropy(bits, 5),
	}
}

// PassRate returns the fraction of battery tests the sequence passes.
func PassRate(bits Bits) float64 {
	rs := Battery(bits)
	pass := 0
	for _, r := range rs {
		if r.Pass() {
			pass++
		}
	}
	return float64(pass) / float64(len(rs))
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// igamc computes the regularized upper incomplete gamma function Q(a, x),
// following the series/continued-fraction split from Numerical Recipes.
func igamc(a, x float64) float64 {
	switch {
	case x <= 0 || a <= 0:
		return 1
	case x < a+1:
		return 1 - gser(a, x)
	default:
		return gcf(a, x)
	}
}

// gser computes P(a,x) by its series representation.
func gser(a, x float64) float64 {
	lnGammaA, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGammaA)
}

// gcf computes Q(a,x) by its continued-fraction representation.
func gcf(a, x float64) float64 {
	lnGammaA, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGammaA) * h
}
