package randtest

import (
	"math"
	"testing"

	"rmcc/internal/crypto/otp"
	"rmcc/internal/rng"
)

func randomBits(n int, seed uint64) Bits {
	r := rng.New(seed)
	words := make([]uint64, (n+63)/64)
	for i := range words {
		words[i] = r.Uint64()
	}
	return FromUint64s(words)[:n]
}

func allZeros(n int) Bits { return make(Bits, n) }
func allOnes(n int) Bits {
	b := make(Bits, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

// alternating returns 0101...; it passes frequency but fails runs/serial.
func alternating(n int) Bits {
	b := make(Bits, n)
	for i := range b {
		b[i] = byte(i & 1)
	}
	return b
}

func TestFromBytes(t *testing.T) {
	bits := FromBytes([]byte{0b10110001})
	want := Bits{1, 0, 1, 1, 0, 0, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestFromUint64s(t *testing.T) {
	bits := FromUint64s([]uint64{1})
	if len(bits) != 64 || bits[63] != 1 || bits[0] != 0 {
		t.Fatalf("unexpected expansion: len=%d first=%d last=%d", len(bits), bits[0], bits[63])
	}
}

func TestFrequencyRejectsBiased(t *testing.T) {
	if Frequency(allZeros(1000)).Pass() {
		t.Fatal("all-zeros passed frequency")
	}
	if Frequency(allOnes(1000)).Pass() {
		t.Fatal("all-ones passed frequency")
	}
}

func TestFrequencyAcceptsRandom(t *testing.T) {
	if r := Frequency(randomBits(100000, 1)); !r.Pass() {
		t.Fatalf("random bits failed frequency: %v", r)
	}
}

func TestRunsRejectsAlternating(t *testing.T) {
	if Runs(alternating(10000)).Pass() {
		t.Fatal("pure alternation passed runs test")
	}
}

func TestRunsAcceptsRandom(t *testing.T) {
	if r := Runs(randomBits(100000, 2)); !r.Pass() {
		t.Fatalf("random bits failed runs: %v", r)
	}
}

func TestBlockFrequencyRejectsClustered(t *testing.T) {
	// First half all ones, second half all zeros: balanced overall but each
	// block is maximally biased.
	n := 10000
	b := make(Bits, n)
	for i := 0; i < n/2; i++ {
		b[i] = 1
	}
	if BlockFrequency(b, 128).Pass() {
		t.Fatal("clustered sequence passed block frequency")
	}
}

func TestLongestRunAcceptsRandomRejectsDegenerate(t *testing.T) {
	if r := LongestRun(randomBits(200000, 3)); !r.Pass() {
		t.Fatalf("random bits failed longest-run: %v", r)
	}
	if LongestRun(allOnes(200000)).Pass() {
		t.Fatal("all-ones passed longest-run")
	}
}

func TestCumulativeSumsAcceptsRandomRejectsDrift(t *testing.T) {
	if r := CumulativeSums(randomBits(100000, 4)); !r.Pass() {
		t.Fatalf("random bits failed cusum: %v", r)
	}
	if CumulativeSums(allOnes(10000)).Pass() {
		t.Fatal("drifting sequence passed cusum")
	}
}

func TestSerialAcceptsRandomRejectsPeriodic(t *testing.T) {
	if r := Serial(randomBits(100000, 5), 5); !r.Pass() {
		t.Fatalf("random bits failed serial: %v", r)
	}
	if Serial(alternating(100000), 5).Pass() {
		t.Fatal("alternating passed serial")
	}
}

func TestApproximateEntropyAcceptsRandomRejectsPeriodic(t *testing.T) {
	if r := ApproximateEntropy(randomBits(100000, 21), 5); !r.Pass() {
		t.Fatalf("random bits failed approximate entropy: %v", r)
	}
	if ApproximateEntropy(alternating(100000), 5).Pass() {
		t.Fatal("alternating passed approximate entropy")
	}
}

func TestIgamcSanity(t *testing.T) {
	// Q(a, 0) = 1; Q decreases in x; a few reference values.
	if got := igamc(2, 0); got != 1 {
		t.Fatalf("igamc(2,0) = %v", got)
	}
	if igamc(1, 1) <= igamc(1, 2) {
		t.Fatal("igamc not decreasing in x")
	}
	// Q(1, x) = exp(-x).
	for _, x := range []float64{0.5, 1, 2, 5} {
		if got, want := igamc(1, x), math.Exp(-x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("igamc(1,%v) = %v, want %v", x, got, want)
		}
	}
	// Q(0.5, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		if got, want := igamc(0.5, x), math.Erfc(math.Sqrt(x)); math.Abs(got-want) > 1e-10 {
			t.Fatalf("igamc(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

// TestRMCCOTPPassesBattery reproduces the paper's §IV-D1 empirical claim:
// the stream of RMCC OTPs passes the randomness battery at the same rate as
// the raw AES output streams used to build them.
func TestRMCCOTPPassesBattery(t *testing.T) {
	var master [16]byte
	master[0] = 0x5c
	u := otp.MustNewUnit(otp.DeriveKeys(master, 16))

	const samples = 4096
	otpWords := make([]uint64, 0, samples*2)
	ctrWords := make([]uint64, 0, samples*2)
	addrWords := make([]uint64, 0, samples*2)
	r := rng.New(8)
	for i := 0; i < samples; i++ {
		ctr := r.Uint64()
		addr := r.Uint64() &^ 63
		cr := u.CounterOnly(ctr)
		ar := u.AddressOnlyEnc(addr, 0)
		o := otp.Combine(cr.Enc, ar)
		otpWords = append(otpWords, o.Hi, o.Lo)
		ctrWords = append(ctrWords, cr.Enc.Hi, cr.Enc.Lo)
		addrWords = append(addrWords, ar.Hi, ar.Lo)
	}
	otpRate := PassRate(FromUint64s(otpWords))
	ctrRate := PassRate(FromUint64s(ctrWords))
	addrRate := PassRate(FromUint64s(addrWords))
	t.Logf("pass rates: OTP=%.2f ctrAES=%.2f addrAES=%.2f", otpRate, ctrRate, addrRate)
	if otpRate < 1 {
		for _, r := range Battery(FromUint64s(otpWords)) {
			t.Log(r)
		}
	}
	if otpRate < ctrRate || otpRate < addrRate {
		t.Fatalf("OTP stream (%.2f) passes fewer tests than its AES inputs (%.2f, %.2f)",
			otpRate, ctrRate, addrRate)
	}
}

func BenchmarkBattery(b *testing.B) {
	bits := randomBits(100000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Battery(bits)
	}
}
