// Package buildinfo exposes the binary's module version and VCS revision
// from the build-info block the Go linker embeds (runtime/debug), so every
// cmd/ binary answers -version and run manifests record the source SHA
// without shelling out to git.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// read is debug.ReadBuildInfo, swappable in tests.
var read = debug.ReadBuildInfo

// Version returns the main module's version: a tag for released builds,
// "(devel)" for source builds, "unknown" when no build info is embedded
// (e.g. some test binaries).
func Version() string {
	bi, ok := read()
	if !ok || bi.Main.Version == "" {
		return "unknown"
	}
	return bi.Main.Version
}

// GitSHA returns the VCS revision the binary was built from, with a
// "+dirty" suffix when the working tree had local modifications, or
// "unknown" when the build carries no VCS stamp (builds outside a
// checkout, or with -buildvcs=false).
func GitSHA() string {
	bi, ok := read()
	if !ok {
		return "unknown"
	}
	sha, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			sha = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if sha == "" {
		return "unknown"
	}
	if dirty {
		return sha + "+dirty"
	}
	return sha
}

// String renders the one-line -version output for the named tool, e.g.
// "rmccd (devel) abc1234".
func String(tool string) string {
	sha := GitSHA()
	if len(sha) > 12 && sha != "unknown" {
		sha = sha[:12]
	}
	return fmt.Sprintf("%s %s %s", tool, Version(), sha)
}
