package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// fakeInfo installs a synthetic build-info block for the test's duration.
func fakeInfo(t *testing.T, version string, settings map[string]string) {
	t.Helper()
	prev := read
	t.Cleanup(func() { read = prev })
	read = func() (*debug.BuildInfo, bool) {
		bi := &debug.BuildInfo{}
		bi.Main.Version = version
		for k, v := range settings {
			bi.Settings = append(bi.Settings, debug.BuildSetting{Key: k, Value: v})
		}
		return bi, true
	}
}

func TestVersionAndSHA(t *testing.T) {
	fakeInfo(t, "v1.2.3", map[string]string{
		"vcs.revision": "0123456789abcdef0123456789abcdef01234567",
		"vcs.modified": "false",
	})
	if got := Version(); got != "v1.2.3" {
		t.Fatalf("Version = %q", got)
	}
	if got := GitSHA(); got != "0123456789abcdef0123456789abcdef01234567" {
		t.Fatalf("GitSHA = %q", got)
	}
	if got := String("rmccd"); got != "rmccd v1.2.3 0123456789ab" {
		t.Fatalf("String = %q", got)
	}
}

func TestDirtySuffix(t *testing.T) {
	fakeInfo(t, "(devel)", map[string]string{
		"vcs.revision": "deadbeef",
		"vcs.modified": "true",
	})
	if got := GitSHA(); got != "deadbeef+dirty" {
		t.Fatalf("GitSHA = %q", got)
	}
}

func TestNoBuildInfo(t *testing.T) {
	prev := read
	t.Cleanup(func() { read = prev })
	read = func() (*debug.BuildInfo, bool) { return nil, false }
	if Version() != "unknown" || GitSHA() != "unknown" {
		t.Fatalf("missing build info must report unknown, got %q / %q", Version(), GitSHA())
	}
}

func TestRealBuildInfoNeverPanics(t *testing.T) {
	// Whatever the test binary carries, the accessors must return
	// something non-empty.
	if Version() == "" || GitSHA() == "" || String("x") == "" {
		t.Fatal("empty build info fields")
	}
	if !strings.HasPrefix(String("tool"), "tool ") {
		t.Fatalf("String = %q", String("tool"))
	}
}
