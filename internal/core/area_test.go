package core

import "testing"

// TestAreaMatchesPaper checks the §IV-E arithmetic: 128 entries need a
// 4 KB data array, ~1 KB of tag/frequency counters, and the multiplier
// adds a 4 KB SRAM equivalent.
func TestAreaMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if got := c.DataArrayBytes(); got != 4<<10 {
		t.Fatalf("data array = %d B, want 4096 (paper §IV-E)", got)
	}
	tags := c.TagArrayBytes()
	if tags < 768 || tags > 1280 {
		t.Fatalf("tag array = %d B, want ~1 KB", tags)
	}
	total := c.AreaBytes()
	if total < 8<<10 || total > 10<<10 {
		t.Fatalf("total area = %d B, want ~9 KB", total)
	}
	x, inv := CarrylessMultiplierGateDepth()
	if x != 7 || inv != 3 {
		t.Fatalf("gate depth = (%d,%d), want (7,3)", x, inv)
	}
}

func TestAreaScalesWithEntries(t *testing.T) {
	c := DefaultConfig()
	c.Groups = 32 // 256 entries
	if got := c.DataArrayBytes(); got != 8<<10 {
		t.Fatalf("data array = %d B for 256 entries", got)
	}
}
