package core

import (
	"rmcc/internal/snapshot"
)

// EncodeState serializes the table's mutable state: live groups (start,
// use count, validity — the memoized AES results themselves are a pure
// function of start values and the key epoch, so DecodeState recomputes
// them through fill instead of shipping 4 KB of pad material), shadow
// groups, MRU values, epoch counters, the watchpoint histogram, the budget
// carry-over, and stats.
func (t *Table) EncodeState(e *snapshot.Enc) {
	e.U64(uint64(len(t.groups)))
	for i := range t.groups {
		g := &t.groups[i]
		e.Bool(g.valid)
		e.U64(g.start)
		e.U64(g.useCount)
	}
	e.U64(uint64(len(t.shadow)))
	for i := range t.shadow {
		s := &t.shadow[i]
		e.Bool(s.valid)
		e.U64(s.start)
		e.U64(s.useCount)
	}
	e.U64(uint64(len(t.mru)))
	for i := range t.mru {
		e.U64(t.mru[i].value)
	}
	e.U64(t.accessesInEpoch)
	e.U64(t.readsInEpoch)
	e.U64(t.overMaxReads)
	e.U64s(t.watchBelow)
	e.F64(t.budget.available)
	// Hardened-insertion RNG state (all zero when the stock policy is
	// active), so randomized insertion resumes bit-identically.
	var rs [4]uint64
	if t.insertRNG != nil {
		rs = t.insertRNG.State()
	}
	for _, v := range rs {
		e.U64(v)
	}
	e.Binary(&t.stats)
}

// DecodeState restores state written by EncodeState into a table built with
// the identical configuration and fill/sysMax providers. The engine must
// restore its key epoch (and re-derive its OTP unit) before calling this:
// installGroup and the MRU refill recompute every memoized result through
// fill, which closes over the unit.
func (t *Table) DecodeState(d *snapshot.Dec) error {
	if n := d.U64(); n != uint64(len(t.groups)) {
		if err := d.Err(); err != nil {
			return err
		}
		return d.Failf("memo table has %d groups, want %d", n, len(t.groups))
	}
	for i := range t.groups {
		valid := d.Bool()
		start := d.U64()
		useCount := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if valid {
			t.installGroup(i, start)
			t.groups[i].useCount = useCount
		} else {
			t.groups[i].valid = false
		}
	}
	ns := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if ns > uint64(t.cfg.ShadowGroups) {
		return d.Failf("shadow list length %d, cap %d", ns, t.cfg.ShadowGroups)
	}
	t.shadow = t.shadow[:0]
	for i := uint64(0); i < ns; i++ {
		s := shadowGroup{}
		s.valid = d.Bool()
		s.start = d.U64()
		s.useCount = d.U64()
		t.shadow = append(t.shadow, s)
	}
	nm := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if nm > uint64(t.cfg.MRUSize) {
		return d.Failf("MRU list length %d, cap %d", nm, t.cfg.MRUSize)
	}
	t.mru = t.mru[:0]
	for i := uint64(0); i < nm; i++ {
		v := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		t.mru = append(t.mru, mruEntry{value: v, result: t.fill(v)})
	}
	t.accessesInEpoch = d.U64()
	t.readsInEpoch = d.U64()
	t.overMaxReads = d.U64()
	// Rebuild maxLive and the watchpoint ladder from the restored groups,
	// then overlay the epoch's histogram (recompute zeroes it).
	t.recomputeWatchpoints()
	d.U64sInto(t.watchBelow)
	t.budget.available = d.F64()
	var rs [4]uint64
	for i := range rs {
		rs[i] = d.U64()
	}
	if t.insertRNG != nil {
		t.insertRNG.SetState(rs)
	}
	d.Binary(&t.stats)
	return d.Err()
}
