package core

import (
	"testing"

	"rmcc/internal/obs"
)

// driveInsertion pushes enough over-max reads through the table to fire
// exactly one group insertion.
func driveInsertion(tbl *Table, value uint64) {
	for i := uint64(0); i < tbl.Config().OverMaxThreshold; i++ {
		tbl.Lookup(value, true)
	}
}

func hardenedTable(t testing.TB, seed uint64) *Table {
	return newTable(t, func(c *Config) {
		c.OverMaxThreshold = 64
		c.RandomizeInsertion = true
		c.InsertSeed = seed
		c.EnableShadow = false
		c.EnableMRU = false
	})
}

// TestRandomizedInsertionDeterministic: two tables with the same InsertSeed
// and the same read stream must evolve identically (reports, checkpoints
// and figures rely on it); a different seed must diverge within a few
// insertions.
func TestRandomizedInsertionDeterministic(t *testing.T) {
	a, b := hardenedTable(t, 42), hardenedTable(t, 42)
	c := hardenedTable(t, 43)
	diverged := false
	for round := 0; round < 12; round++ {
		v := uint64(1000 + 100*round)
		driveInsertion(a, v)
		driveInsertion(b, v)
		driveInsertion(c, v)
		av, bv, cv := a.LiveValues(), b.LiveValues(), c.LiveValues()
		if len(av) != len(bv) {
			t.Fatalf("round %d: live-value counts differ (%d vs %d)", round, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("round %d: same seed diverged at value %d (%d vs %d)",
					round, i, av[i], bv[i])
			}
		}
		if len(av) != len(cv) {
			diverged = true
		} else {
			for i := range av {
				if av[i] != cv[i] {
					diverged = true
				}
			}
		}
	}
	if !diverged {
		t.Error("different InsertSeed never diverged over 12 insertions")
	}
}

// TestRandomizedInsertionOnLinearLadder: every hardened insertion start
// must come from the linear watchpoint ladder (X+1+8i, i = 0..16),
// possibly clamped to OSM+1 — never the exponential tail, which would
// re-leak the system max (see Config.RandomizeInsertion).
func TestRandomizedInsertionOnLinearLadder(t *testing.T) {
	tbl := hardenedTable(t, 7)
	tr := obs.NewTracer(256)
	tbl.SetTracer(tr, 0)
	for round := 0; round < 20; round++ {
		driveInsertion(tbl, uint64(1000+500*round))
	}
	inserts := 0
	for _, e := range tr.Events() {
		if e.Kind != obs.EvMemoInsert {
			continue
		}
		inserts++
		off := e.V1 - e.V2 // start − max-before
		onLadder := off >= 1 && off <= 129 && (off-1)%8 == 0
		if !onLadder {
			t.Errorf("insertion start %d (max before %d, offset %d) is off the linear ladder",
				e.V1, e.V2, off)
		}
	}
	if inserts == 0 {
		t.Fatal("no insertions fired")
	}
}

// TestRandomizedInsertionClampsToOSM: the OSM clamp still bounds hardened
// draws — no group may *start* above OSM+1, the same §IV-D2 bound the
// stock policy observes (the group body may extend GroupSize−1 past it,
// exactly as in stock).
func TestRandomizedInsertionClampsToOSM(t *testing.T) {
	osm := uint64(140)
	cfg := DefaultConfig()
	cfg.EpochAccesses = 1000
	cfg.OverMaxThreshold = 64
	cfg.RandomizeInsertion = true
	cfg.InsertSeed = 9
	tbl := MustNewTable(cfg, fakeFill, func() uint64 { return osm })
	tr := obs.NewTracer(256)
	tbl.SetTracer(tr, 0)
	for round := 0; round < 30; round++ {
		driveInsertion(tbl, 200+uint64(round))
	}
	inserts := 0
	for _, e := range tr.Events() {
		if e.Kind != obs.EvMemoInsert {
			continue
		}
		inserts++
		if e.V1 > osm+1 {
			t.Fatalf("insertion start %d exceeds OSM+1 (%d)", e.V1, osm+1)
		}
	}
	if inserts == 0 {
		t.Fatal("no insertions fired")
	}
}

// TestHardenedLookupNoAllocs guards the hardened read-hit path: turning on
// RandomizeInsertion must not add allocations to Lookup (the satellite
// alloc guard; the draw only runs inside insertNewGroup).
func TestHardenedLookupNoAllocs(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 1 << 40
		c.RandomizeInsertion = true
		c.InsertSeed = 1
	})
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		v := uint64(i) & 127
		if i&1 == 1 {
			v += 1 << 20
		}
		tbl.Lookup(v, true)
		i++
	})
	if avg != 0 {
		t.Errorf("hardened Lookup allocates %v allocs/run, want 0", avg)
	}
}
