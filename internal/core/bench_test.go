package core

import "testing"

// BenchmarkMemoLookup measures the full read-path lookup — recordRead
// (over-max check + watchpoint bucketing) plus the group scan — on a mixed
// hit/miss value stream like the one the engine generates. Must be zero
// allocs/op.
func BenchmarkMemoLookup(b *testing.B) {
	tbl := newTable(b, func(c *Config) { c.OverMaxThreshold = 1 << 40 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate in-table values with over-max misses (the common shape
		// once a workload's counters outrun the table).
		v := uint64(i) & 127
		if i&1 == 1 {
			v += 1 << 20
		}
		tbl.Lookup(v, true)
	}
}

// BenchmarkMemoLookupOverMax isolates the over-max miss path that the
// cached table max and watchpoint binary search optimize.
func BenchmarkMemoLookupOverMax(b *testing.B) {
	tbl := newTable(b, func(c *Config) { c.OverMaxThreshold = 1 << 40 })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(1<<20+uint64(i&1023), true)
	}
}

// BenchmarkMemoLookupHardened measures the same mixed stream with the
// hardened (randomized-insertion) policy enabled, including live insertion
// pressure. Must stay zero allocs/op: hardening may not tax the read path.
func BenchmarkMemoLookupHardened(b *testing.B) {
	tbl := newTable(b, func(c *Config) {
		c.OverMaxThreshold = 2048
		c.RandomizeInsertion = true
		c.InsertSeed = 1
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := uint64(i) & 127
		if i&1 == 1 {
			v += 1 << 20
		}
		tbl.Lookup(v, true)
	}
}
