package core

// Area model from the paper's §IV-E: the memoization table stores 32 B of
// AES results per entry (16 B decrypt + 16 B MAC pads), the tag/frequency
// machinery needs 16 B counters for current groups, recently evicted
// groups, and new-group candidates, and the truncated 128×128→128
// carry-less multiplier costs the equivalent of ~4 KB of SRAM (12 K XOR
// gates at 2× an SRAM cell plus 16 K inverters at half a cell).

// EntryBytes is the data-array cost per memoized value (§IV-E).
const EntryBytes = 32

// clmulEquivalentBytes is the carry-less multiplier's SRAM-equivalent area.
const clmulEquivalentBytes = 4 << 10

// DataArrayBytes returns the memoization data-array size (4 KB for the
// paper's 128 entries).
func (c Config) DataArrayBytes() int { return c.Entries() * EntryBytes }

// TagArrayBytes returns the tag/frequency storage: 16 B per tracked group
// counter across live groups, shadow groups, and the watchpoint candidates
// (1 KB in the paper's configuration: 64 16-byte counters).
func (c Config) TagArrayBytes() int {
	watchpoints := 17 + 14 // X+1+8i and X+129+2^j monitors
	return (c.Groups + c.ShadowGroups + watchpoints + 1) * 16
}

// AreaBytes returns the SRAM-equivalent area of one table including its
// share of the carry-less multiplier, matching §IV-E's ~9 KB total for the
// paper configuration (4 KB data + ~1 KB tags + 4 KB multiplier).
func (c Config) AreaBytes() int {
	return c.DataArrayBytes() + c.TagArrayBytes() + clmulEquivalentBytes
}

// CarrylessMultiplierGateDepth returns the §IV-E critical-path estimate:
// log2(128) XOR levels plus log4(128) inverter levels.
func CarrylessMultiplierGateDepth() (xors, inverters int) { return 7, 3 }
