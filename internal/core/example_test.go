package core_test

import (
	"fmt"

	"rmcc/internal/core"
	"rmcc/internal/crypto/otp"
)

// Example walks the paper's Figure 7: a block's counter climbs through
// consecutive memoized values across writebacks, staying covered the whole
// way.
func Example() {
	unit := otp.MustNewUnit(otp.DeriveKeys([16]byte{7}, 16))
	table := core.MustNewTable(core.DefaultConfig(),
		func(v uint64) otp.CtrResult { return unit.CounterOnly(v) }, nil)

	ctr := uint64(23)
	for w := 1; w <= 3; w++ {
		next, _ := table.NearestMemoized(ctr)
		fmt.Printf("writeback %d: %d -> %d (memoized: %v)\n",
			w, ctr, next, table.Contains(next))
		ctr = next
	}
	// Output:
	// writeback 1: 23 -> 24 (memoized: true)
	// writeback 2: 24 -> 25 (memoized: true)
	// writeback 3: 25 -> 26 (memoized: true)
}
