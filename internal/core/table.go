// Package core implements the paper's contribution: Self-Reinforcing
// Memoization for Cryptography Calculations (RMCC).
//
// A Table memoizes the counter-only AES results of hot counter values so
// that when a missing counter arrives from memory, the memory controller
// can look the value up instead of running 10–14 serial AES rounds. The
// memoization-aware counter-update policy (NearestMemoized + the engine's
// write path) raises counters onto memoized values, self-reinforcing the
// table's coverage (paper §IV-B).
//
// Organization (paper Figure 9 and §IV-C):
//
//   - 16 live Memoized Counter Value Groups × 8 consecutive values
//     (128 entries, 32 B each: a 16 B decrypt result + a 16 B MAC result);
//   - 16 shadow (recently evicted) groups that keep use-frequency counters,
//     like shadow tags in cache-replacement work;
//   - an MRU cache of up to 16 individual values falling under evicted
//     groups (§IV-C4, the "+6 % hit rate" optimization of Figure 10);
//   - watchpoints above Max-counter-in-Table (X+1+8i for i=0..16 and
//     X+129+2^j for j=4..17) driving mid-epoch insertion of a new group
//     once ≥ 2 K reads per epoch exceed the table max (§IV-C3);
//   - a per-epoch bandwidth-overhead budget with carry-over (§IV-C1).
package core

import (
	"fmt"
	"sort"

	"rmcc/internal/crypto/otp"
	"rmcc/internal/obs"
	"rmcc/internal/rng"
)

// Config parameterizes one memoization table.
type Config struct {
	Groups       int // live Memoized Counter Value Groups (16)
	GroupSize    int // consecutive values per group (8; Figs 21-22 sweep 4/8/16)
	ShadowGroups int // recently evicted groups tracked (16)
	MRUSize      int // memoized values under evicted groups (16)

	OverMaxThreshold uint64  // reads above table max per epoch that trigger insertion (2048)
	CoverageQuantile float64 // new group start must cover this fraction of epoch reads (0.98)

	EpochAccesses uint64  // memory accesses per epoch (1,000,000)
	BudgetFrac    float64 // traffic-overhead budget per epoch (0.01 = 1 %)

	// Ablation switches (all true in the paper's main configuration).
	EnableMRU        bool // §IV-C4 evicted-value MRU cache
	EnableShadow     bool // shadow-group frequency tracking
	EnableReadUpdate bool // §IV-C1 read-triggered counter updates

	// RandomizeInsertion hardens the insertion policy against the
	// memo-insert side channel (docs/SIDECHANNEL.md): instead of choosing
	// the new group's start as the smallest watchpoint covering
	// CoverageQuantile of the epoch's reads — a deterministic function of
	// the victim's counter height, and therefore of its write count — the
	// table draws uniformly from the linear watchpoint ladder (X+1+8i,
	// i = 0..16). The draw deliberately excludes the exponential tail:
	// those starts would almost always clamp to OSM+1, re-leaking the
	// system's maximum counter. Off by default (the paper's policy).
	RandomizeInsertion bool
	// InsertSeed seeds the hardened draw (only used when
	// RandomizeInsertion is set). Deterministic per seed.
	InsertSeed uint64
}

// DefaultConfig returns the paper's main configuration.
func DefaultConfig() Config {
	return Config{
		Groups:           16,
		GroupSize:        8,
		ShadowGroups:     16,
		MRUSize:          16,
		OverMaxThreshold: 2048,
		CoverageQuantile: 0.98,
		EpochAccesses:    1_000_000,
		BudgetFrac:       0.01,
		EnableMRU:        true,
		EnableShadow:     true,
		EnableReadUpdate: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Groups <= 0 || c.GroupSize <= 0:
		return fmt.Errorf("core: need positive Groups/GroupSize, got %d/%d", c.Groups, c.GroupSize)
	case c.ShadowGroups < 0 || c.MRUSize < 0:
		return fmt.Errorf("core: negative shadow/MRU sizes")
	case c.CoverageQuantile <= 0 || c.CoverageQuantile > 1:
		return fmt.Errorf("core: CoverageQuantile %v out of (0,1]", c.CoverageQuantile)
	case c.EpochAccesses == 0:
		return fmt.Errorf("core: EpochAccesses must be positive")
	case c.BudgetFrac < 0:
		return fmt.Errorf("core: negative BudgetFrac")
	}
	return nil
}

// Entries returns the total number of memoized values (Groups × GroupSize).
func (c Config) Entries() int { return c.Groups * c.GroupSize }

type group struct {
	start    uint64
	useCount uint64
	valid    bool
	results  []otp.CtrResult // GroupSize counter-only AES result pairs
}

func (g *group) contains(v uint64, size int) bool {
	return g.valid && v >= g.start && v < g.start+uint64(size)
}

type shadowGroup struct {
	start    uint64
	useCount uint64
	valid    bool
}

type mruEntry struct {
	value  uint64
	result otp.CtrResult
}

// HitSource says which structure served a memoization hit (Figure 10's
// breakdown).
type HitSource int

// Hit sources.
const (
	MissSource HitSource = iota
	GroupSource
	MRUSource
)

// Stats aggregates table activity since construction.
type Stats struct {
	Lookups    uint64
	GroupHits  uint64
	MRUHits    uint64
	Misses     uint64
	Insertions uint64 // mid-epoch new-group insertions
	Epochs     uint64
	// BudgetSpent counts block transfers charged to the overhead budget;
	// BudgetDenied counts spend attempts refused for lack of budget.
	BudgetSpent  uint64
	BudgetDenied uint64
}

// HitRate returns (group+MRU hits)/lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.GroupHits+s.MRUHits) / float64(s.Lookups)
}

// Table is one RMCC memoization table (the MC keeps one for L0 counters and
// one for L1 counters). Not safe for concurrent use.
type Table struct {
	cfg    Config
	fill   func(uint64) otp.CtrResult // computes counter-only AES results
	sysMax func() uint64              // Observed-System-Max register provider

	groups []group
	shadow []shadowGroup
	mru    []mruEntry // front = most recent

	// maxLive caches MaxInTable; recomputeWatchpoints refreshes it after
	// every structural change to the live groups.
	maxLive uint64

	// Epoch state. watchpoints is strictly ascending; watchBelow[i] counts
	// the epoch's reads whose value falls below watchpoints[i] but not below
	// watchpoints[i-1], so the per-watchpoint totals the insertion policy
	// needs are the prefix sums of watchBelow.
	accessesInEpoch uint64
	readsInEpoch    uint64
	overMaxReads    uint64
	watchpoints     []uint64
	watchBelow      []uint64

	budget budget

	// insertRNG drives randomized group insertion (Config.RandomizeInsertion);
	// nil when the stock coverage-quantile policy is active.
	insertRNG *rng.Source

	stats Stats

	// trace receives lifecycle events (insertions, epoch rollovers, budget
	// activity) when attached via SetTracer; nil disables tracing. traceID
	// distinguishes the MC's tables in the event stream (0 = L0, 1 = L1).
	trace   *obs.Tracer
	traceID uint64
}

type budget struct {
	perEpoch  float64
	available float64
}

// NewTable builds a table. fill computes the counter-only AES results for a
// value (the slow computation being memoized); sysMax reads the
// Observed-System-Max register (§IV-D2) bounding new group starts. Initial
// groups seed values 0..Entries-1 so a freshly booted system memoizes the
// low counter range.
func NewTable(cfg Config, fill func(uint64) otp.CtrResult, sysMax func() uint64) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fill == nil {
		return nil, fmt.Errorf("core: nil fill function")
	}
	if sysMax == nil {
		sysMax = func() uint64 { return ^uint64(0) }
	}
	t := &Table{
		cfg:    cfg,
		fill:   fill,
		sysMax: sysMax,
		groups: make([]group, cfg.Groups),
		shadow: make([]shadowGroup, 0, cfg.ShadowGroups),
		budget: budget{perEpoch: cfg.BudgetFrac * float64(cfg.EpochAccesses)},
	}
	t.budget.available = t.budget.perEpoch
	if cfg.RandomizeInsertion {
		t.insertRNG = rng.New(cfg.InsertSeed)
	}
	for i := range t.groups {
		t.installGroup(i, uint64(i*cfg.GroupSize))
	}
	t.recomputeWatchpoints()
	return t, nil
}

// MustNewTable is NewTable but panics on error.
func MustNewTable(cfg Config, fill func(uint64) otp.CtrResult, sysMax func() uint64) *Table {
	t, err := NewTable(cfg, fill, sysMax)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the table configuration.
func (t *Table) Config() Config { return t.cfg }

// Seed replaces the live groups with groups starting at the given values
// (at most Groups of them; remaining slots keep their current contents).
// It models a warm-started system whose table already tracks the hot
// counter-value range, and is also useful in tests.
func (t *Table) Seed(starts []uint64) {
	for i, s := range starts {
		if i >= len(t.groups) {
			break
		}
		t.installGroup(i, s)
	}
	t.recomputeWatchpoints()
}

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

// SetTracer attaches tr (nil detaches) with the given table id; events the
// table emits carry id in their Addr field (0 = L0, 1 = L1 by engine
// convention).
func (t *Table) SetTracer(tr *obs.Tracer, id uint64) {
	t.trace = tr
	t.traceID = id
}

// installGroup memoizes GroupSize consecutive values starting at start into
// slot i, computing their counter-only AES results.
func (t *Table) installGroup(i int, start uint64) {
	g := &t.groups[i]
	g.start = start
	g.useCount = 0
	g.valid = true
	if g.results == nil {
		g.results = make([]otp.CtrResult, t.cfg.GroupSize)
	}
	for k := 0; k < t.cfg.GroupSize; k++ {
		g.results[k] = t.fill(start + uint64(k))
	}
}

// MaxInTable returns the largest memoized value across live groups
// (Max-counter-in-Table, Figure 9). The value is cached and refreshed by
// recomputeWatchpoints, so the per-read over-max check is O(1).
func (t *Table) MaxInTable() uint64 { return t.maxLive }

// Contains reports whether value is currently memoized in a live group.
func (t *Table) Contains(value uint64) bool {
	if value > t.maxLive {
		return false
	}
	for i := range t.groups {
		if t.groups[i].contains(value, t.cfg.GroupSize) {
			return true
		}
	}
	return false
}

// LiveValues returns all currently memoized values in ascending order
// (used by coverage scans for Figure 15).
func (t *Table) LiveValues() []uint64 {
	out := make([]uint64, 0, t.cfg.Entries())
	for i := range t.groups {
		if g := &t.groups[i]; g.valid {
			for k := 0; k < t.cfg.GroupSize; k++ {
				out = append(out, g.start+uint64(k))
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Poison corrupts the stored AES results for a live memoized value (fault
// injection: an SRAM upset or deliberate tamper in the memoization table).
// Until repaired, lookups of value serve a wrong pad — which the engine's
// functional verification must catch. It reports whether value was live.
func (t *Table) Poison(value uint64) bool {
	for i := range t.groups {
		g := &t.groups[i]
		if g.contains(value, t.cfg.GroupSize) {
			r := &g.results[value-g.start]
			r.Enc.Lo ^= 0xbad0bad
			r.Mac.Hi ^= 0xbad0bad
			return true
		}
	}
	return false
}

// Repair recomputes the stored results for value wherever it is memoized
// (live group and MRU cache), healing a poisoned entry with a fresh AES
// computation — the fall-back-to-baseline-AES recovery path.
func (t *Table) Repair(value uint64) {
	for i := range t.groups {
		g := &t.groups[i]
		if g.contains(value, t.cfg.GroupSize) {
			g.results[value-g.start] = t.fill(value)
		}
	}
	for i := range t.mru {
		if t.mru[i].value == value {
			t.mru[i].result = t.fill(value)
		}
	}
}

// Lookup consults the table for a counter value that just arrived from
// memory. isRead marks lookups on behalf of read requests: those drive the
// use-frequency counters and the over-max watchpoint statistics. On a miss
// under an evicted group, the value is promoted into the MRU cache so its
// next use hits (§IV-C4).
func (t *Table) Lookup(value uint64, isRead bool) (otp.CtrResult, HitSource) {
	t.stats.Lookups++
	if isRead {
		t.recordRead(value)
	}
	if value <= t.maxLive { // no live group can hold a value above the max
		for i := range t.groups {
			g := &t.groups[i]
			if g.contains(value, t.cfg.GroupSize) {
				if isRead {
					g.useCount++
				}
				t.stats.GroupHits++
				return g.results[value-g.start], GroupSource
			}
		}
	}
	// Shadow groups: keep counting uses of evicted groups, and serve the
	// MRU evicted-value cache.
	inShadow := false
	if t.cfg.EnableShadow {
		for i := range t.shadow {
			s := &t.shadow[i]
			if s.valid && value >= s.start && value < s.start+uint64(t.cfg.GroupSize) {
				if isRead {
					s.useCount++
				}
				inShadow = true
				break
			}
		}
	}
	if t.cfg.EnableMRU && inShadow {
		for i := range t.mru {
			if t.mru[i].value == value {
				e := t.mru[i]
				copy(t.mru[1:i+1], t.mru[:i])
				t.mru[0] = e
				t.stats.MRUHits++
				return e.result, MRUSource
			}
		}
		// First use since eviction: compute once (this lookup still pays
		// the AES latency) and memoize for next time.
		e := mruEntry{value: value, result: t.fill(value)}
		if len(t.mru) < t.cfg.MRUSize {
			t.mru = append(t.mru, mruEntry{})
		}
		copy(t.mru[1:], t.mru[:len(t.mru)-1])
		t.mru[0] = e
	}
	t.stats.Misses++
	return otp.CtrResult{}, MissSource
}

// NearestMemoized returns the smallest live memoized value strictly greater
// than current — the memoization-aware counter-update target (§IV-B). MRU
// and shadow values are deliberately excluded: their composition changes
// with every access, so the update policy does not chase them (§IV-C4).
func (t *Table) NearestMemoized(current uint64) (uint64, bool) {
	best := uint64(0)
	found := false
	for i := range t.groups {
		g := &t.groups[i]
		if !g.valid {
			continue
		}
		end := g.start + uint64(t.cfg.GroupSize) - 1
		if end <= current {
			continue
		}
		cand := g.start
		if cand <= current {
			cand = current + 1
		}
		if !found || cand < best {
			best, found = cand, true
		}
	}
	return best, found
}

// recordRead updates the over-max count and watchpoint histogram. Every
// OverMaxThreshold reads above the table max triggers another group
// insertion, so the insertion rate is paced by how hard the workload's
// counter values outrun the table (§IV-C3).
func (t *Table) recordRead(value uint64) {
	t.readsInEpoch++
	if value > t.maxLive {
		t.overMaxReads++
		if t.overMaxReads >= t.cfg.OverMaxThreshold {
			t.overMaxReads = 0
			t.insertNewGroup()
		}
	}
	// value < w holds for exactly the ascending suffix of watchpoints that
	// starts at the first one above value; bucket that index instead of
	// touching the whole suffix.
	if i := sort.Search(len(t.watchpoints), func(i int) bool { return value < t.watchpoints[i] }); i < len(t.watchBelow) {
		t.watchBelow[i]++
	}
}

// recomputeWatchpoints refreshes the cached table max and rebuilds the
// monitored values above it: X+1+8i (i = 0..16) and X+129+2^j (j = 4..17),
// a strictly ascending sequence.
func (t *Table) recomputeWatchpoints() {
	var x uint64
	for i := range t.groups {
		if g := &t.groups[i]; g.valid {
			if end := g.start + uint64(t.cfg.GroupSize) - 1; end > x {
				x = end
			}
		}
	}
	t.maxLive = x
	t.watchpoints = t.watchpoints[:0]
	for i := 0; i <= 16; i++ {
		t.watchpoints = append(t.watchpoints, x+1+8*uint64(i))
	}
	for j := 4; j <= 17; j++ {
		t.watchpoints = append(t.watchpoints, x+129+(uint64(1)<<uint(j)))
	}
	t.watchBelow = make([]uint64, len(t.watchpoints))
}

// insertNewGroup replaces the least-frequently-used live group with a new
// group whose start is the smallest watchpoint covering CoverageQuantile of
// this epoch's reads, bounded by the Observed-System-Max register so the
// system's maximum counter value still only advances one step per write
// (§IV-C3, §IV-D2).
func (t *Table) insertNewGroup() {
	maxBefore := t.maxLive
	var start uint64
	if t.insertRNG != nil {
		// Hardened policy: a uniform draw over the linear watchpoint ladder
		// decouples the new group's start from the epoch read histogram
		// (docs/SIDECHANNEL.md). The exponential tail is excluded on
		// purpose — see Config.RandomizeInsertion.
		start = t.watchpoints[t.insertRNG.Uint64n(17)]
	} else {
		start = t.chooseNewStart()
	}
	if max := t.sysMax(); start > max+1 {
		start = max + 1
	}
	if t.Contains(start) {
		return // nothing to gain; already memoized
	}
	// Evict the LFU live group into the shadow list.
	victim := 0
	for i := range t.groups {
		if !t.groups[i].valid {
			victim = i
			break
		}
		if t.groups[i].useCount < t.groups[victim].useCount {
			victim = i
		}
	}
	t.evictToShadow(victim)
	t.installGroup(victim, start)
	t.stats.Insertions++
	t.trace.Emit(obs.EvMemoInsert, t.traceID, start, maxBefore)
	t.recomputeWatchpoints()
}

func (t *Table) chooseNewStart() uint64 {
	need := t.cfg.CoverageQuantile * float64(t.readsInEpoch)
	var below uint64 // prefix sum of watchBelow = reads under watchpoint i
	for i, w := range t.watchpoints {
		below += t.watchBelow[i]
		if float64(below) >= need {
			return w
		}
	}
	if n := len(t.watchpoints); n > 0 {
		return t.watchpoints[n-1]
	}
	return t.MaxInTable() + 1
}

func (t *Table) evictToShadow(i int) {
	if !t.cfg.EnableShadow || !t.groups[i].valid {
		return
	}
	s := shadowGroup{start: t.groups[i].start, useCount: t.groups[i].useCount, valid: true}
	if len(t.shadow) < t.cfg.ShadowGroups {
		t.shadow = append(t.shadow, shadowGroup{})
	}
	copy(t.shadow[1:], t.shadow[:len(t.shadow)-1])
	t.shadow[0] = s
}

// OnAccess advances the epoch clock by one memory access and runs the
// end-of-epoch maintenance at the boundary. The engine calls it once per
// memory access it processes.
func (t *Table) OnAccess() {
	t.accessesInEpoch++
	if t.accessesInEpoch >= t.cfg.EpochAccesses {
		t.endEpoch()
	}
}

// endEpoch re-ranks the 32 tracked groups, keeping the 15 most frequently
// used plus the most recent insertion (§IV-C3), replenishes the budget with
// carry-over (§IV-C1), ages frequency counters, and resets epoch state.
func (t *Table) endEpoch() {
	t.stats.Epochs++
	t.rerank()
	// Carry leftover budget into the new epoch.
	t.budget.available += t.budget.perEpoch
	t.trace.Emit(obs.EvEpochRollover, t.traceID, t.stats.Epochs, uint64(t.budget.available))
	// Age use counts so stale popularity decays.
	for i := range t.groups {
		t.groups[i].useCount /= 2
	}
	for i := range t.shadow {
		t.shadow[i].useCount /= 2
	}
	t.accessesInEpoch = 0
	t.readsInEpoch = 0
	t.overMaxReads = 0
	for i := range t.watchBelow {
		t.watchBelow[i] = 0
	}
}

// rerank promotes shadow groups that out-ran live groups: the 16 live slots
// after re-ranking hold the most frequently used groups among the 32
// tracked.
func (t *Table) rerank() {
	if !t.cfg.EnableShadow || len(t.shadow) == 0 {
		return
	}
	type cand struct {
		start    uint64
		useCount uint64
		live     bool
		idx      int
	}
	cands := make([]cand, 0, len(t.groups)+len(t.shadow))
	for i := range t.groups {
		if t.groups[i].valid {
			cands = append(cands, cand{t.groups[i].start, t.groups[i].useCount, true, i})
		}
	}
	for i := range t.shadow {
		if t.shadow[i].valid {
			cands = append(cands, cand{t.shadow[i].start, t.shadow[i].useCount, false, i})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].useCount > cands[b].useCount })
	if len(cands) <= len(t.groups) {
		return
	}
	keep := cands[:len(t.groups)]
	// Demote live groups that fell out; promote shadow groups that rose in.
	keepLive := make(map[int]bool)
	var promote []cand
	for _, c := range keep {
		if c.live {
			keepLive[c.idx] = true
		} else {
			promote = append(promote, c)
		}
	}
	for _, p := range promote {
		// Find a live slot not kept.
		for i := range t.groups {
			if !keepLive[i] {
				t.evictToShadow(i)
				t.installGroup(i, p.start)
				// Preserve the promoted group's popularity.
				t.groups[i].useCount = p.useCount
				keepLive[i] = true
				// Remove the promoted entry from the shadow list.
				for s := range t.shadow {
					if t.shadow[s].valid && t.shadow[s].start == p.start {
						t.shadow[s].valid = false
						break
					}
				}
				break
			}
		}
	}
	t.recomputeWatchpoints()
}

// --- Budget (§IV-C1/C2) ---

// SpendBudget charges blocks of overhead traffic against the epoch budget.
// It returns false (charging nothing) when the remaining budget is
// insufficient; the caller must then fall back to the baseline policy.
func (t *Table) SpendBudget(blocks int) bool {
	if float64(blocks) > t.budget.available {
		t.stats.BudgetDenied++
		t.trace.Emit(obs.EvBudgetDenied, t.traceID, uint64(blocks), uint64(t.budget.available))
		return false
	}
	t.budget.available -= float64(blocks)
	t.stats.BudgetSpent += uint64(blocks)
	t.trace.Emit(obs.EvBudgetSpend, t.traceID, uint64(blocks), uint64(t.budget.available))
	return true
}

// BudgetRemaining returns the unspent overhead budget in block transfers.
func (t *Table) BudgetRemaining() float64 { return t.budget.available }
