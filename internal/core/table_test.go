package core

import (
	"testing"
	"testing/quick"

	"rmcc/internal/crypto/otp"
)

// fakeFill produces a deterministic, distinguishable result per value so
// tests can verify the table returns the right memoized entry.
func fakeFill(v uint64) otp.CtrResult {
	return otp.CtrResult{
		Enc: otp.Word128{Hi: v, Lo: ^v},
		Mac: otp.Word128{Hi: v * 3, Lo: v ^ 0xdead},
	}
}

func newTable(t testing.TB, mutate func(*Config)) *Table {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EpochAccesses = 1000 // fast epochs for tests
	if mutate != nil {
		mutate(&cfg)
	}
	return MustNewTable(cfg, fakeFill, func() uint64 { return 1 << 40 })
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Groups = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero groups accepted")
	}
	bad = DefaultConfig()
	bad.CoverageQuantile = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("quantile > 1 accepted")
	}
	if DefaultConfig().Entries() != 128 {
		t.Fatalf("entries = %d, want 128 (Table I)", DefaultConfig().Entries())
	}
}

func TestInitialSeedCoversLowValues(t *testing.T) {
	tbl := newTable(t, nil)
	// Fresh table memoizes 0..127.
	for v := uint64(0); v < 128; v++ {
		if !tbl.Contains(v) {
			t.Fatalf("value %d not memoized at boot", v)
		}
	}
	if tbl.Contains(128) {
		t.Fatal("value 128 memoized at boot")
	}
	if got := tbl.MaxInTable(); got != 127 {
		t.Fatalf("MaxInTable = %d, want 127", got)
	}
}

func TestLookupReturnsCorrectResult(t *testing.T) {
	tbl := newTable(t, nil)
	res, src := tbl.Lookup(42, true)
	if src != GroupSource {
		t.Fatalf("source = %v, want group hit", src)
	}
	if res != fakeFill(42) {
		t.Fatalf("wrong memoized result for 42: %+v", res)
	}
	_, src = tbl.Lookup(1_000_000, true)
	if src != MissSource {
		t.Fatalf("distant value hit: %v", src)
	}
}

func TestNearestMemoized(t *testing.T) {
	tbl := newTable(t, nil)
	cases := []struct {
		current uint64
		want    uint64
		ok      bool
	}{
		{0, 1, true},     // next value within group 0
		{7, 8, true},     // crosses into group 1
		{126, 127, true}, // last memoized value
		{127, 0, false},  // nothing above table max
		{500, 0, false},
	}
	for _, c := range cases {
		got, ok := tbl.NearestMemoized(c.current)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NearestMemoized(%d) = (%d,%v), want (%d,%v)", c.current, got, ok, c.want, c.ok)
		}
	}
}

func TestNearestMemoizedAlwaysIncreases(t *testing.T) {
	tbl := newTable(t, nil)
	f := func(cur uint64) bool {
		got, ok := tbl.NearestMemoized(cur % 200)
		return !ok || got > cur%200
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFigure7ConsecutiveWritebacks replays the paper's Figure 7: a block
// whose counter sits below the table keeps landing on memoized values
// across consecutive writebacks.
func TestFigure7ConsecutiveWritebacks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochAccesses = 1000
	tbl := MustNewTable(cfg, fakeFill, func() uint64 { return 1 << 40 })
	ctr := uint64(23)
	steps := 0
	for w := 0; w < 200; w++ {
		next, ok := tbl.NearestMemoized(ctr)
		if !ok {
			break
		}
		if next <= ctr {
			t.Fatalf("writeback %d: target %d not above %d", w, next, ctr)
		}
		if !tbl.Contains(next) {
			t.Fatalf("writeback %d: target %d not memoized", w, next)
		}
		ctr = next
		steps++
	}
	// From 23 the policy steps +1 through every memoized value up to the
	// table max (127), staying covered the whole way — Figure 7's property.
	if ctr != 127 || steps != 127-23 {
		t.Fatalf("counter = %d after %d steps, want 127 after %d", ctr, steps, 127-23)
	}
}

// TestOverMaxInsertion reproduces §IV-C3: enough reads above the table max
// trigger a new Memoized Counter Value Group whose start covers most of the
// epoch's reads.
func TestOverMaxInsertion(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 100
		c.EpochAccesses = 1_000_000 // avoid epoch rollover mid-test
	})
	before := tbl.MaxInTable()
	// Reads clustered just above the max.
	for i := 0; i < 200; i++ {
		tbl.Lookup(before+1+uint64(i%8), true)
	}
	if tbl.Stats().Insertions == 0 {
		t.Fatal("no insertion after threshold over-max reads")
	}
	if tbl.MaxInTable() <= before {
		t.Fatalf("table max did not grow: %d -> %d", before, tbl.MaxInTable())
	}
	// New values should now hit.
	_, src := tbl.Lookup(tbl.MaxInTable(), true)
	if src != GroupSource {
		t.Fatal("newly inserted group does not serve hits")
	}
}

func TestInsertionRespectsSystemMax(t *testing.T) {
	sysMax := uint64(130)
	cfg := DefaultConfig()
	cfg.EpochAccesses = 1_000_000
	cfg.OverMaxThreshold = 50
	tbl := MustNewTable(cfg, fakeFill, func() uint64 { return sysMax })
	for i := 0; i < 100000 && tbl.Stats().Insertions == 0; i++ {
		tbl.Lookup(100_000, true) // far above the table
	}
	if tbl.Stats().Insertions == 0 {
		t.Fatal("no insertion")
	}
	// Despite reads at 100000, the new group must start at or below
	// SystemMax+1 so the max counter still advances by single steps.
	if got := tbl.MaxInTable(); got > sysMax+1+uint64(cfg.GroupSize) {
		t.Fatalf("table max %d violates the System-Max bound (%d)", got, sysMax)
	}
}

func TestInsertionsPacedByThreshold(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 100
		c.EpochAccesses = 1_000_000
	})
	for i := 0; i < 10000; i++ {
		tbl.Lookup(1<<30+uint64(i), true)
	}
	ins := tbl.Stats().Insertions
	if ins == 0 {
		t.Fatal("no insertions")
	}
	// Every insertion consumed at least OverMaxThreshold over-max reads.
	if ins > 10000/100 {
		t.Fatalf("insertions = %d exceed the threshold pacing bound %d", ins, 10000/100)
	}
}

func TestEpochResetsAllowNextInsertion(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 10
		c.EpochAccesses = 100
	})
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 100; i++ {
			tbl.Lookup(1<<30+uint64(epoch*1000+i), true)
			tbl.OnAccess()
		}
	}
	if ins := tbl.Stats().Insertions; ins < 2 {
		t.Fatalf("insertions = %d across 3 epochs, want >= 2", ins)
	}
	if tbl.Stats().Epochs != 3 {
		t.Fatalf("epochs = %d", tbl.Stats().Epochs)
	}
}

// TestMRUEvictedValues verifies §IV-C4: after a group is evicted, the first
// use of one of its values misses (and promotes it), the second use hits
// via the MRU cache.
func TestMRUEvictedValues(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 10
		c.EpochAccesses = 1_000_000
	})
	// Heat up all groups except group 0 (values 0..7) so it becomes LFU.
	for v := uint64(8); v < 128; v++ {
		tbl.Lookup(v, true)
	}
	// Force an insertion; group 0 is the LFU victim.
	for i := 0; i < 20; i++ {
		tbl.Lookup(1<<20, true)
	}
	if tbl.Contains(3) {
		t.Fatal("group 0 not evicted")
	}
	// First use after eviction: miss, promoted to MRU.
	if _, src := tbl.Lookup(3, true); src != MissSource {
		t.Fatalf("first evicted-value use = %v, want miss", src)
	}
	// Second use: MRU hit with the right result.
	res, src := tbl.Lookup(3, true)
	if src != MRUSource {
		t.Fatalf("second evicted-value use = %v, want MRU hit", src)
	}
	if res != fakeFill(3) {
		t.Fatal("MRU returned wrong result")
	}
}

func TestMRUDisabledAblation(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.EnableMRU = false
		c.OverMaxThreshold = 10
		c.EpochAccesses = 1_000_000
	})
	for v := uint64(8); v < 128; v++ {
		tbl.Lookup(v, true)
	}
	for i := 0; i < 20; i++ {
		tbl.Lookup(1<<20, true)
	}
	tbl.Lookup(3, true)
	if _, src := tbl.Lookup(3, true); src == MRUSource {
		t.Fatal("MRU hit despite ablation")
	}
}

// TestShadowPromotion: a group that keeps getting used after eviction is
// promoted back at the epoch boundary (shadow-tag re-ranking).
func TestShadowPromotion(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 10
		c.EpochAccesses = 500
	})
	// Make group 0 (values 0..7) LFU and force eviction.
	for v := uint64(8); v < 128; v++ {
		tbl.Lookup(v, true)
	}
	for i := 0; i < 20; i++ {
		tbl.Lookup(1<<20, true)
	}
	if tbl.Contains(0) {
		t.Fatal("setup: group 0 still live")
	}
	// Hammer the evicted group's values so its shadow count dominates,
	// then cross the epoch boundary.
	for i := 0; i < 500; i++ {
		tbl.Lookup(uint64(i%8), true)
		tbl.OnAccess()
	}
	if !tbl.Contains(0) {
		t.Fatal("hot evicted group not promoted back at epoch end")
	}
}

func TestBudgetSpendAndCarryOver(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.EpochAccesses = 1000
		c.BudgetFrac = 0.01 // 10 blocks per epoch
	})
	if !tbl.SpendBudget(8) {
		t.Fatal("spend within budget refused")
	}
	if tbl.SpendBudget(5) {
		t.Fatal("overspend allowed")
	}
	if tbl.Stats().BudgetDenied != 1 {
		t.Fatalf("denied = %d", tbl.Stats().BudgetDenied)
	}
	// Cross an epoch: leftover 2 + 10 new = 12.
	for i := 0; i < 1000; i++ {
		tbl.OnAccess()
	}
	if got := tbl.BudgetRemaining(); got != 12 {
		t.Fatalf("budget after carry-over = %v, want 12", got)
	}
}

func TestHitRateStats(t *testing.T) {
	tbl := newTable(t, nil)
	tbl.Lookup(5, true)    // hit
	tbl.Lookup(5000, true) // miss
	s := tbl.Stats()
	if s.Lookups != 2 || s.GroupHits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestLiveValuesSortedUnique(t *testing.T) {
	tbl := newTable(t, nil)
	vals := tbl.LiveValues()
	if len(vals) != 128 {
		t.Fatalf("live values = %d", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("values not strictly increasing at %d", i)
		}
	}
}

func TestGroupSizeSweepEntriesConstant(t *testing.T) {
	// Figures 21-22 sweep group size at constant 128 entries.
	for _, gs := range []int{4, 8, 16} {
		cfg := DefaultConfig()
		cfg.GroupSize = gs
		cfg.Groups = 128 / gs
		if cfg.Entries() != 128 {
			t.Fatalf("group size %d: entries = %d", gs, cfg.Entries())
		}
		tbl := MustNewTable(cfg, fakeFill, nil)
		if got := len(tbl.LiveValues()); got != 128 {
			t.Fatalf("group size %d: live values = %d", gs, got)
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tbl := newTable(b, nil)
	for i := 0; i < b.N; i++ {
		tbl.Lookup(uint64(i)&127, true)
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	tbl := newTable(b, nil)
	for i := 0; i < b.N; i++ {
		tbl.Lookup(1<<30+uint64(i), false)
	}
}

func BenchmarkNearestMemoized(b *testing.B) {
	tbl := newTable(b, nil)
	for i := 0; i < b.N; i++ {
		tbl.NearestMemoized(uint64(i) & 127)
	}
}

// TestWatchpointBucketsMatchNaive drives random read traffic and checks that
// the bucketed watchpoint histogram (watchBelow + prefix sums) reproduces the
// naive per-watchpoint counts ("reads with value < watchpoint"), i.e. the
// recordRead optimization is observationally identical.
func TestWatchpointBucketsMatchNaive(t *testing.T) {
	tbl := newTable(t, func(c *Config) {
		c.OverMaxThreshold = 1 << 40 // no insertions: watchpoints stay fixed
		c.EpochAccesses = 1 << 40    // no epoch reset mid-test
	})
	values := make([]uint64, 0, 4000)
	v := uint64(12345)
	for i := 0; i < 4000; i++ {
		v = v*6364136223846793005 + 1442695040888963407 // LCG, deterministic
		val := v % 40000                                // spans all watchpoints
		values = append(values, val)
		tbl.Lookup(val, true)
	}
	var prefix uint64
	for i, w := range tbl.watchpoints {
		prefix += tbl.watchBelow[i]
		var naive uint64
		for _, val := range values {
			if val < w {
				naive++
			}
		}
		if prefix != naive {
			t.Fatalf("watchpoint %d (=%d): bucketed count %d, naive %d", i, w, prefix, naive)
		}
	}
}

// TestMaxInTableCached checks the cached Max-counter-in-Table against a naive
// scan of the live values after seeding and after forced insertions.
func TestMaxInTableCached(t *testing.T) {
	tbl := newTable(t, func(c *Config) { c.OverMaxThreshold = 4 })
	naiveMax := func() uint64 {
		var m uint64
		for _, v := range tbl.LiveValues() {
			if v > m {
				m = v
			}
		}
		return m
	}
	if got, want := tbl.MaxInTable(), naiveMax(); got != want {
		t.Fatalf("fresh table: MaxInTable = %d, naive = %d", got, want)
	}
	tbl.Seed([]uint64{1000, 2000, 3000})
	if got, want := tbl.MaxInTable(), naiveMax(); got != want {
		t.Fatalf("after Seed: MaxInTable = %d, naive = %d", got, want)
	}
	for i := 0; i < 64; i++ { // force over-max insertions
		tbl.Lookup(tbl.MaxInTable()+100, true)
		if got, want := tbl.MaxInTable(), naiveMax(); got != want {
			t.Fatalf("after insertion round %d: MaxInTable = %d, naive = %d", i, got, want)
		}
	}
}
