// Package trace records workload access streams to a compact binary format
// and replays them as workloads. Traces decouple stream generation from
// simulation — the same stream can drive this simulator twice (e.g. across
// schemes with bit-identical inputs), be diffed across versions, or be
// exported for cross-simulator comparison, the role Pin traces play in the
// paper's methodology.
//
// Format (little-endian):
//
//	magic "RMTR" | version u8 | name len u8 | name bytes
//	then per access a varint-encoded record:
//	  flags-and-gap u8: bit0 = write, bits 1..7 = gap (0-127)
//	  addr delta: signed varint from the previous address
//
// Delta + varint encoding compresses typical streams to 2-4 bytes per
// access (vs 16 raw).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rmcc/internal/workload"
)

const (
	magic   = "RMTR"
	version = 1
)

// Writer streams accesses to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	count    uint64
	buf      [binary.MaxVarintLen64 + 1]byte
}

// NewWriter writes the header for a trace of the named workload.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	if len(name) > 255 {
		return nil, fmt.Errorf("trace: name too long")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Append records one access. Gaps above 127 are clamped (the format stores
// 7 bits; workload gaps fit comfortably).
func (t *Writer) Append(a workload.Access) error {
	gap := a.Gap
	if gap > 127 {
		gap = 127
	}
	flags := gap << 1
	if a.Write {
		flags |= 1
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	delta := int64(a.Addr) - int64(t.prevAddr)
	n := binary.PutVarint(t.buf[:], delta)
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	t.prevAddr = a.Addr
	t.count++
	return nil
}

// Count returns the number of accesses appended.
func (t *Writer) Count() uint64 { return t.count }

// Flush writes buffered data to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures up to n accesses of w's stream into out.
func Record(w workload.Workload, seed uint64, n uint64, out io.Writer) (uint64, error) {
	tw, err := NewWriter(out, w.Name())
	if err != nil {
		return 0, err
	}
	var appendErr error
	w.Run(seed, func(a workload.Access) bool {
		if appendErr = tw.Append(a); appendErr != nil {
			return false
		}
		return tw.Count() < n
	})
	if appendErr != nil {
		return tw.Count(), appendErr
	}
	return tw.Count(), tw.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r        *bufio.Reader
	name     string
	prevAddr uint64
}

// NewReader validates the header and positions at the first access.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if head[4] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[4])
	}
	name := make([]byte, head[5])
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: short name: %w", err)
	}
	return &Reader{r: br, name: string(name)}, nil
}

// Name returns the recorded workload's name.
func (t *Reader) Name() string { return t.name }

// Next decodes one access; io.EOF signals a clean end of trace.
func (t *Reader) Next() (workload.Access, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		return workload.Access{}, err
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return workload.Access{}, err
	}
	addr := uint64(int64(t.prevAddr) + delta)
	t.prevAddr = addr
	return workload.Access{
		Addr:  addr,
		Write: flags&1 != 0,
		Gap:   flags >> 1,
	}, nil
}

// Replay is a workload.Workload backed by an in-memory trace, so recorded
// streams plug into both simulation drivers unchanged.
type Replay struct {
	name      string
	accesses  []workload.Access
	footprint uint64
}

// Load reads a whole trace into a replayable workload.
func Load(r io.Reader) (*Replay, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rep := &Replay{name: tr.Name() + "-replay"}
	for {
		a, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rep.accesses = append(rep.accesses, a)
		if a.Addr >= rep.footprint {
			rep.footprint = a.Addr + 64
		}
	}
	if len(rep.accesses) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return rep, nil
}

// Name implements workload.Workload.
func (r *Replay) Name() string { return r.name }

// FootprintBytes implements workload.Workload.
func (r *Replay) FootprintBytes() uint64 { return r.footprint }

// Len returns the number of recorded accesses.
func (r *Replay) Len() int { return len(r.accesses) }

// Run implements workload.Workload: the trace loops like live workloads do,
// so the driver controls stream length.
func (r *Replay) Run(_ uint64, sink workload.Sink) {
	for {
		for _, a := range r.accesses {
			if !sink(a) {
				return
			}
		}
	}
}
