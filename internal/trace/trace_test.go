package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"rmcc/internal/workload"
)

func sample(n int) []workload.Access {
	out := make([]workload.Access, n)
	addr := uint64(1 << 20)
	for i := range out {
		addr += uint64(i%777) * 64
		out[i] = workload.Access{Addr: addr, Write: i%5 == 0, Gap: uint8(i % 100)}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "unit")
	if err != nil {
		t.Fatal(err)
	}
	accs := sample(5000)
	for _, a := range accs {
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "unit" {
		t.Fatalf("name = %q", r.Name())
	}
	for i, want := range accs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("access %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, seed uint8) bool {
		if len(addrs) == 0 {
			return true
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, "prop")
		in := make([]workload.Access, len(addrs))
		for i, a := range addrs {
			in[i] = workload.Access{Addr: a, Write: a&1 == 0, Gap: uint8(a % 128)}
			if err := w.Append(in[i]); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range in {
			got, err := r.Next()
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompression(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "compress")
	// Sequential stride-64 stream: should approach 2 bytes/access.
	for i := 0; i < 10000; i++ {
		w.Append(workload.Access{Addr: uint64(i) * 64, Gap: 4})
	}
	w.Flush()
	if perAcc := float64(buf.Len()) / 10000; perAcc > 4 {
		t.Fatalf("compression poor: %.1f bytes/access", perAcc)
	}
}

func TestRecordAndLoadWorkload(t *testing.T) {
	orig, _ := workload.ByName(workload.SizeTest, 1, "canneal")
	var buf bytes.Buffer
	n, err := Record(orig, 7, 20000, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20000 {
		t.Fatalf("recorded %d", n)
	}
	rep, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 20000 {
		t.Fatalf("replay len = %d", rep.Len())
	}
	// The replay must reproduce the original stream exactly (modulo the
	// 7-bit gap clamp, which canneal's gaps stay under).
	orig2, _ := workload.ByName(workload.SizeTest, 1, "canneal")
	var expect []workload.Access
	orig2.Run(7, func(a workload.Access) bool {
		expect = append(expect, a)
		return len(expect) < 20000
	})
	i := 0
	rep.Run(0, func(a workload.Access) bool {
		if a != expect[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a, expect[i])
		}
		i++
		return i < len(expect)
	})
	if rep.FootprintBytes() == 0 {
		t.Fatal("zero footprint")
	}
}

func TestReplayLoops(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "loop")
	w.Append(workload.Access{Addr: 64})
	w.Append(workload.Access{Addr: 128})
	w.Flush()
	rep, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	rep.Run(0, func(workload.Access) bool {
		count++
		return count < 7 // more than recorded: must loop
	})
	if count != 7 {
		t.Fatalf("replay did not loop: %d", count)
	}
}

func TestBadHeaders(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("JUNK00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("RMTR\x09\x00"))); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "empty")
	w.Flush()
	if _, err := Load(&buf); err == nil {
		t.Fatal("empty trace accepted by Load")
	}
}

func TestGapClamp(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "clamp")
	w.Append(workload.Access{Addr: 0, Gap: 255})
	w.Flush()
	r, _ := NewReader(&buf)
	a, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if a.Gap != 127 {
		t.Fatalf("gap = %d, want clamped 127", a.Gap)
	}
}
