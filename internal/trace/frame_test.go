package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"rmcc/internal/workload"
)

// genAccesses builds a deterministic pseudo-random access stream with
// the full range of deltas the codec must handle.
func genAccesses(n int, seed int64) []workload.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]workload.Access, n)
	addr := uint64(1 << 30)
	for i := range out {
		switch rng.Intn(4) {
		case 0:
			addr += 64
		case 1:
			addr -= 4096
		case 2:
			addr = rng.Uint64()
		case 3:
			addr += uint64(rng.Intn(1 << 20))
		}
		out[i] = workload.Access{Addr: addr, Write: rng.Intn(2) == 1, Gap: uint8(rng.Intn(128))}
	}
	return out
}

func frameStream(t testing.TB, accs []workload.Access, batch int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf, batch)
	for _, a := range accs {
		if err := fw.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	for _, batch := range []int{1, 7, 4096} {
		accs := genAccesses(10_000, 42)
		stream := frameStream(t, accs, batch)
		fr := NewFrameReader(bytes.NewReader(stream))
		var got []workload.Access
		batchBuf := make([]workload.Access, 0, batch)
		for {
			var err error
			batchBuf, err = fr.DecodeInto(batchBuf)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("batch=%d: %v", batch, err)
			}
			got = append(got, batchBuf...)
		}
		if len(got) != len(accs) {
			t.Fatalf("batch=%d: decoded %d accesses, want %d", batch, len(got), len(accs))
		}
		for i := range accs {
			if got[i] != accs[i] {
				t.Fatalf("batch=%d: access %d = %+v, want %+v", batch, i, got[i], accs[i])
			}
		}
	}
}

// TestFrameMatchesRMTREncoding pins the payload encoding to the RMTR
// file body: reframing a trace file must reproduce the access stream
// bit-exactly, and a single-frame payload must equal the file's body
// bytes (same per-access encoding, same delta predictor).
func TestFrameMatchesRMTREncoding(t *testing.T) {
	accs := genAccesses(500, 7)
	var rmtr bytes.Buffer
	w, err := NewWriter(&rmtr, "wire")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	fileBody := rmtr.Bytes()[len(magic)+2+len("wire"):]

	stream := frameStream(t, accs, len(accs))
	if got := stream[frameHeaderLen:]; !bytes.Equal(got, fileBody) {
		t.Fatalf("frame payload (%d bytes) differs from RMTR file body (%d bytes)", len(got), len(fileBody))
	}

	var framed bytes.Buffer
	n, err := Reframe(bytes.NewReader(rmtr.Bytes()), &framed, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(accs)) {
		t.Fatalf("reframed %d accesses, want %d", n, len(accs))
	}
	fr := NewFrameReader(&framed)
	var got []workload.Access
	buf := make([]workload.Access, 0, 64)
	for {
		buf, err = fr.DecodeInto(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf...)
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], accs[i])
		}
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid := frameStream(t, genAccesses(10, 1), 10)

	hdr := func(payloadLen, count uint32) []byte {
		b := make([]byte, frameHeaderLen)
		binary.LittleEndian.PutUint32(b[0:4], payloadLen)
		binary.LittleEndian.PutUint32(b[4:8], count)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"truncated header", valid[:5], ErrFrameCorrupt},
		{"truncated payload", valid[:len(valid)-3], ErrFrameCorrupt},
		{"oversized payload", hdr(MaxFramePayload+1, 1), ErrFrameTooLarge},
		{"oversized count", hdr(64, MaxFrameAccesses+1), ErrFrameTooLarge},
		{"zero accesses", hdr(0, 0), ErrFrameCorrupt},
		{"payload too small for count", hdr(4, 100), ErrFrameCorrupt},
		{"trailing payload bytes", append(append(hdr(uint32(len(valid))-frameHeaderLen+2, 10), valid[frameHeaderLen:]...), 0, 0), ErrFrameCorrupt},
		{"unterminated varint", append(hdr(11, 1), 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80), ErrFrameCorrupt},
	}
	for _, tc := range cases {
		fr := NewFrameReader(bytes.NewReader(tc.in))
		_, err := fr.DecodeInto(nil)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// EOF at a frame boundary is the clean end of stream, not an error.
	fr := NewFrameReader(bytes.NewReader(valid))
	if _, err := fr.DecodeInto(nil); err != nil {
		t.Fatalf("valid frame: %v", err)
	}
	if _, err := fr.DecodeInto(nil); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestDecodeFrameAllocFree is the tentpole's alloc guard: once the
// reader's payload buffer and the caller's batch have grown to steady
// state, decoding a 4096-access frame performs zero allocations — the
// binary replay hot path adds nothing per access or per frame.
func TestDecodeFrameAllocFree(t *testing.T) {
	accs := genAccesses(DefaultFrameAccesses, 3)
	stream := frameStream(t, accs, DefaultFrameAccesses)
	src := bytes.NewReader(stream)
	fr := NewFrameReader(src)
	batch := make([]workload.Access, 0, DefaultFrameAccesses)
	var err error
	if batch, err = fr.DecodeInto(batch); err != nil { // warm the payload buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		src.Reset(stream)
		// A fresh stream restarts the delta predictor; realign the
		// reader's so decode results stay consistent run to run.
		fr.prevAddr = 0
		if batch, err = fr.DecodeInto(batch); err != nil {
			t.Fatal(err)
		}
		if len(batch) != DefaultFrameAccesses {
			t.Fatalf("decoded %d accesses", len(batch))
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeInto allocates %.1f/op at steady state, want 0", allocs)
	}
}

// BenchmarkDecodeFrame measures the binary wire's per-access decode cost
// at steady state: one full frame per iteration, reused buffers.
func BenchmarkDecodeFrame(b *testing.B) {
	accs := genAccesses(DefaultFrameAccesses, 3)
	stream := frameStream(b, accs, DefaultFrameAccesses)
	src := bytes.NewReader(stream)
	fr := NewFrameReader(src)
	batch := make([]workload.Access, 0, DefaultFrameAccesses)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(stream)
		fr.prevAddr = 0
		var err error
		if batch, err = fr.DecodeInto(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(DefaultFrameAccesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// FuzzDecodeFrame: arbitrary bytes fed to the frame decoder must either
// decode or return a typed error (ErrFrameTooLarge / ErrFrameCorrupt /
// io.EOF), never panic and never allocate unbounded memory — the server
// hands it raw request bodies.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(frameStream(f, genAccesses(20, 9), 8))
	f.Add([]byte{})
	f.Add(make([]byte, frameHeaderLen))
	big := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(big[0:4], MaxFramePayload+1)
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		batch := make([]workload.Access, 0, 64)
		for i := 0; i < 1_000; i++ {
			var err error
			batch, err = fr.DecodeInto(batch)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			if len(batch) == 0 || len(batch) > MaxFrameAccesses {
				t.Fatalf("decoded batch of %d accesses", len(batch))
			}
		}
	})
}
