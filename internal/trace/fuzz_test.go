package trace

import (
	"bytes"
	"io"
	"testing"

	"rmcc/internal/workload"
)

// FuzzReader ensures arbitrary bytes never panic the decoder: every input
// either parses to a (possibly empty) access stream or returns an error.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w, _ := NewWriter(&valid, "seed")
	w.Append(workload.Access{Addr: 4096, Write: true, Gap: 7})
	w.Append(workload.Access{Addr: 8192, Gap: 3})
	w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte("RMTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1_000_000; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					// Any error is fine as long as it is an error, not a
					// panic; bufio may surface other io errors.
					_ = err
				}
				return
			}
		}
	})
}

// FuzzWriterReaderRoundTrip: any encodable access sequence survives a
// round trip bit-exactly.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1<<40), true, uint8(5))
	f.Fuzz(func(t *testing.T, a1, a2 uint64, wr bool, gap uint8) {
		if gap > 127 {
			gap = 127
		}
		in := []workload.Access{
			{Addr: a1, Write: wr, Gap: gap},
			{Addr: a2, Write: !wr, Gap: 127 - gap},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "fz")
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range in {
			if err := w.Append(a); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range in {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("access %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("access %d: %+v != %+v", i, got, want)
			}
		}
	})
}
