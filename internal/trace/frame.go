// Binary replay framing: the wire form of RMTR.
//
// An RMTR file is one unbounded varint stream — fine on disk, but a
// streaming replay endpoint needs to decode and apply input in bounded
// batches without buffering the whole body. A frame stream chunks the
// same per-access encoding into length-prefixed batches:
//
//	frame := payload-len u32 LE | access-count u32 LE | payload
//	payload := access-count × (flags u8 | addr-delta varint)
//
// The per-access encoding is byte-identical to the RMTR file body
// (flags bit0 = write, bits 1..7 = gap), and the address-delta
// predictor runs across frame boundaries, so reframing a trace file
// costs one varint decode + encode per access and no compression loss.
// A body is a plain concatenation of frames; EOF at a frame boundary is
// the clean end of stream.
//
// Limits are part of the format: a decoder rejects frames whose header
// declares more than MaxFramePayload bytes or MaxFrameAccesses accesses
// before reading the payload, so a hostile 4 GiB length prefix costs
// nothing. All decode failures are typed — ErrFrameTooLarge for limit
// violations, ErrFrameCorrupt for truncation, trailing bytes, or
// malformed varints — never panics (FuzzDecodeFrame enforces this).
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rmcc/internal/workload"
)

const (
	// frameHeaderLen is the fixed frame prefix: payload-len + access-count.
	frameHeaderLen = 8
	// MaxFramePayload caps one frame's encoded payload (1 MiB).
	MaxFramePayload = 1 << 20
	// MaxFrameAccesses caps one frame's access count. The worst-case
	// record is 11 bytes (flags + 10-byte varint), so a full frame still
	// fits MaxFramePayload.
	MaxFrameAccesses = 1 << 16
	// DefaultFrameAccesses is the writer's default batch size: big enough
	// to amortize the 8-byte header and the receiver's per-frame shard
	// round-trip, small enough for chunk-granular backpressure.
	DefaultFrameAccesses = 4096
)

// ErrFrameTooLarge rejects frames whose header exceeds the format limits.
var ErrFrameTooLarge = errors.New("trace: frame exceeds format limits")

// ErrFrameCorrupt rejects truncated or malformed frames.
var ErrFrameCorrupt = errors.New("trace: corrupt frame")

// FrameWriter encodes accesses into length-prefixed RMTR frames. Append
// buffers into the current frame and emits it as one Write when the
// batch size is reached; Flush emits a pending partial frame. The zero
// batch size selects DefaultFrameAccesses.
type FrameWriter struct {
	w        io.Writer
	batch    int
	count    uint32
	prevAddr uint64
	total    uint64
	// buf holds the frame under construction: 8 reserved header bytes
	// followed by the encoded payload, written in a single call so the
	// writer composes with unbuffered sinks (pipes, sockets).
	buf []byte
}

// NewFrameWriter frames accesses onto w in batches of batch accesses
// (clamped to [1, MaxFrameAccesses]; 0 means DefaultFrameAccesses).
func NewFrameWriter(w io.Writer, batch int) *FrameWriter {
	if batch <= 0 {
		batch = DefaultFrameAccesses
	}
	if batch > MaxFrameAccesses {
		batch = MaxFrameAccesses
	}
	return &FrameWriter{
		w:     w,
		batch: batch,
		buf:   make([]byte, frameHeaderLen, frameHeaderLen+batch*(binary.MaxVarintLen64+1)),
	}
}

// Append encodes one access into the current frame, emitting the frame
// when the batch fills. Gaps above 127 are clamped, matching the RMTR
// file encoding.
func (fw *FrameWriter) Append(a workload.Access) error {
	gap := a.Gap
	if gap > 127 {
		gap = 127
	}
	flags := gap << 1
	if a.Write {
		flags |= 1
	}
	fw.buf = append(fw.buf, flags)
	fw.buf = binary.AppendVarint(fw.buf, int64(a.Addr)-int64(fw.prevAddr))
	fw.prevAddr = a.Addr
	fw.count++
	fw.total++
	if int(fw.count) >= fw.batch {
		return fw.Flush()
	}
	return nil
}

// Count returns the total accesses appended across all frames.
func (fw *FrameWriter) Count() uint64 { return fw.total }

// Flush emits the pending frame, if any. Call after the last Append;
// an empty pending frame is a no-op (frames never carry zero accesses).
func (fw *FrameWriter) Flush() error {
	if fw.count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(fw.buf[0:4], uint32(len(fw.buf)-frameHeaderLen))
	binary.LittleEndian.PutUint32(fw.buf[4:8], fw.count)
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:frameHeaderLen]
	fw.count = 0
	return err
}

// FrameReader decodes a frame stream. The payload buffer and delta
// predictor persist across frames, so steady-state decoding performs
// zero allocations (TestDecodeFrameAllocFree).
type FrameReader struct {
	r        io.Reader
	prevAddr uint64
	hdr      [frameHeaderLen]byte
	payload  []byte
}

// NewFrameReader decodes frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// DecodeInto reads the next frame and decodes it into dst's backing
// array, returning the decoded batch (len = the frame's access count).
// io.EOF signals a clean end of stream at a frame boundary; every other
// failure wraps ErrFrameTooLarge or ErrFrameCorrupt.
func (fr *FrameReader) DecodeInto(dst []workload.Access) ([]workload.Access, error) {
	dst = dst[:0]
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return dst, io.EOF
		}
		return dst, fmt.Errorf("%w: truncated frame header: %v", ErrFrameCorrupt, err)
	}
	payloadLen := binary.LittleEndian.Uint32(fr.hdr[0:4])
	count := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if payloadLen > MaxFramePayload {
		return dst, fmt.Errorf("%w: payload %d bytes (cap %d)", ErrFrameTooLarge, payloadLen, MaxFramePayload)
	}
	if count > MaxFrameAccesses {
		return dst, fmt.Errorf("%w: %d accesses (cap %d)", ErrFrameTooLarge, count, MaxFrameAccesses)
	}
	if count == 0 {
		return dst, fmt.Errorf("%w: zero-access frame", ErrFrameCorrupt)
	}
	if payloadLen < 2*count {
		// Every record is at least two bytes; reject before reading.
		return dst, fmt.Errorf("%w: %d-byte payload cannot hold %d accesses", ErrFrameCorrupt, payloadLen, count)
	}
	if cap(fr.payload) < int(payloadLen) {
		fr.payload = make([]byte, payloadLen)
	}
	fr.payload = fr.payload[:payloadLen]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		return dst, fmt.Errorf("%w: truncated frame payload: %v", ErrFrameCorrupt, err)
	}
	off := 0
	for i := uint32(0); i < count; i++ {
		if off >= len(fr.payload) {
			return dst, fmt.Errorf("%w: payload ends at access %d of %d", ErrFrameCorrupt, i, count)
		}
		flags := fr.payload[off]
		off++
		delta, n := binary.Varint(fr.payload[off:])
		if n <= 0 {
			return dst, fmt.Errorf("%w: bad addr delta at access %d", ErrFrameCorrupt, i)
		}
		off += n
		addr := uint64(int64(fr.prevAddr) + delta)
		fr.prevAddr = addr
		dst = append(dst, workload.Access{Addr: addr, Write: flags&1 != 0, Gap: flags >> 1})
	}
	if off != len(fr.payload) {
		return dst, fmt.Errorf("%w: %d trailing payload bytes", ErrFrameCorrupt, len(fr.payload)-off)
	}
	return dst, nil
}

// Reframe converts an RMTR trace stream (the rmcc-trace file format)
// into a frame stream — the client half of the binary replay wire. It
// returns the access count framed. The per-access cost is one varint
// decode plus one encode; nothing allocates per access.
func Reframe(trace io.Reader, frames io.Writer, batch int) (uint64, error) {
	tr, err := NewReader(trace)
	if err != nil {
		return 0, err
	}
	fw := NewFrameWriter(frames, batch)
	for {
		a, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fw.Count(), err
		}
		if err := fw.Append(a); err != nil {
			return fw.Count(), err
		}
	}
	return fw.Count(), fw.Flush()
}
