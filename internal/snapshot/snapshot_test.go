package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

func writeSample(t *testing.T, kind string, hash uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewWriter(&buf, kind, hash)
	var e Enc
	e.U64(42)
	e.String("hello")
	e.U64s([]uint64{1, 2, 3})
	sw.Section("meta", e.Data())
	e.Reset()
	e.F64(0.25)
	e.Bool(true)
	sw.Section("state", e.Data())
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripSections(t *testing.T) {
	data := writeSample(t, "test-kind", 0xfeed)
	sr, err := NewReader(bytes.NewReader(data), "test-kind")
	if err != nil {
		t.Fatal(err)
	}
	if sr.ConfigHash() != 0xfeed {
		t.Fatalf("config hash %x", sr.ConfigHash())
	}
	meta, err := sr.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDec(meta)
	if v := d.U64(); v != 42 {
		t.Fatalf("u64 = %d", v)
	}
	if s := d.String(); s != "hello" {
		t.Fatalf("string = %q", s)
	}
	got := d.U64s()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("u64s = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	state, err := sr.Section("state")
	if err != nil {
		t.Fatal(err)
	}
	d = NewDec(state)
	if f := d.F64(); f != 0.25 {
		t.Fatalf("f64 = %v", f)
	}
	if !d.Bool() {
		t.Fatal("bool = false")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderErrors(t *testing.T) {
	data := writeSample(t, "test-kind", 1)

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := NewReader(bytes.NewReader(bad), "test-kind"); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	// Future version.
	bad = append([]byte(nil), data...)
	bad[8] = 99
	if _, err := NewReader(bytes.NewReader(bad), "test-kind"); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("bad version: %v", err)
	}

	// Wrong kind.
	if _, err := NewReader(bytes.NewReader(data), "other-kind"); !errors.Is(err, ErrSnapshotConfigMismatch) {
		t.Fatalf("wrong kind: %v", err)
	}

	// Truncated header.
	if _, err := NewReader(bytes.NewReader(data[:10]), "test-kind"); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("short header: %v", err)
	}
}

func TestSectionErrors(t *testing.T) {
	data := writeSample(t, "k", 1)

	// Every truncation point must yield ErrSnapshotCorrupt from some stage.
	for cut := len(data) - 1; cut > 36; cut -= 7 { // header is 36 bytes
		sr, err := NewReader(bytes.NewReader(data[:cut]), "k")
		if err != nil {
			t.Fatalf("cut %d: header: %v", cut, err)
		}
		if _, err = sr.Section("meta"); err == nil {
			if _, err = sr.Section("state"); err == nil {
				err = sr.Close()
			}
		}
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("cut %d: want corrupt, got %v", cut, err)
		}
	}

	// Flipped payload byte breaks the CRC.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40
	sr, err := NewReader(bytes.NewReader(bad), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = sr.Section("meta"); err == nil {
		_, err = sr.Section("state")
	}
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bit flip: want corrupt, got %v", err)
	}

	// Wrong section order.
	sr, err = NewReader(bytes.NewReader(data), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Section("state"); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("out-of-order section: %v", err)
	}

	// Trailing garbage after the last section.
	withTail := append(append([]byte(nil), data...), 0xaa)
	sr, err = NewReader(bytes.NewReader(withTail), "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Section("meta"); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Section("state"); err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDecBounds(t *testing.T) {
	// A length prefix larger than the remaining payload must fail cleanly
	// without allocating the claimed size.
	var e Enc
	e.U64(1 << 60) // slice length claim
	d := NewDec(e.Data())
	if s := d.U64s(); s != nil {
		t.Fatalf("got slice of %d", len(s))
	}
	if !errors.Is(d.Err(), ErrSnapshotCorrupt) {
		t.Fatalf("err = %v", d.Err())
	}

	// U64sInto enforces exact geometry.
	e.Reset()
	e.U64s([]uint64{1, 2})
	d = NewDec(e.Data())
	dst := make([]uint64, 3)
	d.U64sInto(dst)
	if !errors.Is(d.Err(), ErrSnapshotCorrupt) {
		t.Fatalf("geometry mismatch: %v", d.Err())
	}

	// Trailing payload bytes are corrupt.
	e.Reset()
	e.U64(7)
	e.U64(8)
	d = NewDec(e.Data())
	_ = d.U64()
	if err := d.Finish(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("trailing: %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	type fixed struct {
		A uint64
		B [3]uint64
	}
	in := fixed{A: 9, B: [3]uint64{1, 2, 3}}
	var e Enc
	e.Binary(&in)
	var out fixed
	d := NewDec(e.Data())
	d.Binary(&out)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}

	// Short binary payload fails typed.
	d = NewDec(e.Data()[:len(e.Data())-4])
	var short fixed
	d.Binary(&short)
	if !errors.Is(d.Err(), ErrSnapshotCorrupt) {
		t.Fatalf("short binary: %v", d.Err())
	}
}
