// Package snapshot defines the versioned, length-prefixed binary container
// that checkpoints engine and simulator state (ROADMAP item "snapshot/
// restore"; related work treats checkpoint integrity as first-class —
// Osiris-style counter recovery, Anubis-style shadow tracking).
//
// Layout:
//
//	header   magic(8) | format version(u32) | kind(16, zero-padded) | config hash(u64)
//	section  tag(8, zero-padded) | payload length(u64) | CRC32-IEEE(u32) | payload
//	...      (sections in a fixed, kind-defined order)
//
// All integers are little-endian. Readers must see exactly the sections the
// kind defines, in order, followed by EOF. Every decode failure maps onto
// one of three typed errors so callers (and the fuzz target) can classify:
//
//   - ErrSnapshotCorrupt: bad magic, bad CRC, truncation, trailing garbage,
//     or a payload whose internal structure does not decode.
//   - ErrSnapshotVersion: the format version is not FormatVersion.
//   - ErrSnapshotConfigMismatch: the kind or config hash does not match the
//     state the caller is restoring into.
//
// The package is a leaf (stdlib only) so every layer — counter store, cache
// model, memoization table, engine, sim stepper, rmccd — can import it.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
)

// FormatVersion is the current container format. Readers reject any other
// version with ErrSnapshotVersion: section payloads are not cross-version
// compatible (see docs/SNAPSHOTS.md for the compatibility policy).
const FormatVersion uint32 = 1

var magic = [8]byte{'R', 'M', 'C', 'C', 'S', 'N', 'A', 'P'}

// Typed decode failures. Callers classify with errors.Is.
var (
	// ErrSnapshotCorrupt marks truncated, checksum-failing, or structurally
	// invalid snapshot bytes.
	ErrSnapshotCorrupt = errors.New("snapshot corrupt")
	// ErrSnapshotVersion marks a snapshot written under a different format
	// version.
	ErrSnapshotVersion = errors.New("snapshot format version unsupported")
	// ErrSnapshotConfigMismatch marks a well-formed snapshot of the wrong
	// kind or of state built under a different configuration.
	ErrSnapshotConfigMismatch = errors.New("snapshot config mismatch")
)

// HashString hashes a canonical configuration rendering with FNV-1a; the
// result goes in the header so Load can refuse state from a mismatched
// configuration before touching any section payload.
func HashString(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

const (
	kindBytes = 16
	tagBytes  = 8
)

func padName(s string, n int) ([]byte, error) {
	if len(s) > n {
		return nil, fmt.Errorf("snapshot: name %q longer than %d bytes", s, n)
	}
	b := make([]byte, n)
	copy(b, s)
	return b, nil
}

func unpadName(b []byte) string {
	return string(bytes.TrimRight(b, "\x00"))
}

// Writer emits one snapshot stream: header at construction, then sections,
// then Close. Errors are sticky; Close reports the first one.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter writes the header for a snapshot of the given kind and config
// hash and returns the section writer.
func NewWriter(w io.Writer, kind string, configHash uint64) *Writer {
	sw := &Writer{w: w}
	kb, err := padName(kind, kindBytes)
	if err != nil {
		sw.err = err
		return sw
	}
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	binary.Write(&hdr, binary.LittleEndian, FormatVersion)
	hdr.Write(kb)
	binary.Write(&hdr, binary.LittleEndian, configHash)
	_, sw.err = w.Write(hdr.Bytes())
	return sw
}

// Section appends one tagged, CRC-protected section.
func (sw *Writer) Section(tag string, payload []byte) {
	if sw.err != nil {
		return
	}
	tb, err := padName(tag, tagBytes)
	if err != nil {
		sw.err = err
		return
	}
	var hdr bytes.Buffer
	hdr.Write(tb)
	binary.Write(&hdr, binary.LittleEndian, uint64(len(payload)))
	binary.Write(&hdr, binary.LittleEndian, crc32.ChecksumIEEE(payload))
	if _, err := sw.w.Write(hdr.Bytes()); err != nil {
		sw.err = err
		return
	}
	_, sw.err = sw.w.Write(payload)
}

// Close finishes the stream and reports the first write error.
func (sw *Writer) Close() error { return sw.err }

// Reader consumes a snapshot stream section by section.
type Reader struct {
	r          io.Reader
	configHash uint64
}

// NewReader validates the header: magic (ErrSnapshotCorrupt), format
// version (ErrSnapshotVersion), and kind (ErrSnapshotConfigMismatch). The
// config hash is exposed for the caller to compare against its own state.
func NewReader(r io.Reader, kind string) (*Reader, error) {
	hdr := make([]byte, len(magic)+4+kindBytes+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrSnapshotCorrupt, err)
	}
	if !bytes.Equal(hdr[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	off := len(magic)
	if v := binary.LittleEndian.Uint32(hdr[off:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: got version %d, support %d", ErrSnapshotVersion, v, FormatVersion)
	}
	off += 4
	if got := unpadName(hdr[off : off+kindBytes]); got != kind {
		return nil, fmt.Errorf("%w: snapshot kind %q, want %q", ErrSnapshotConfigMismatch, got, kind)
	}
	off += kindBytes
	return &Reader{r: r, configHash: binary.LittleEndian.Uint64(hdr[off:])}, nil
}

// ConfigHash returns the header's config hash.
func (sr *Reader) ConfigHash() uint64 { return sr.configHash }

// Section reads the next section, which must carry the given tag, and
// returns its CRC-verified payload. The payload is read incrementally
// (io.CopyN into a growing buffer), so a truncated stream claiming a huge
// length fails without allocating the claimed size.
func (sr *Reader) Section(tag string) ([]byte, error) {
	hdr := make([]byte, tagBytes+8+4)
	if _, err := io.ReadFull(sr.r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short section header: %v", ErrSnapshotCorrupt, err)
	}
	if got := unpadName(hdr[:tagBytes]); got != tag {
		return nil, fmt.Errorf("%w: section tag %q, want %q", ErrSnapshotCorrupt, got, tag)
	}
	length := binary.LittleEndian.Uint64(hdr[tagBytes:])
	sum := binary.LittleEndian.Uint32(hdr[tagBytes+8:])
	if length > math.MaxInt64 {
		return nil, fmt.Errorf("%w: section %q length %d", ErrSnapshotCorrupt, tag, length)
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, sr.r, int64(length)); err != nil {
		return nil, fmt.Errorf("%w: section %q truncated: %v", ErrSnapshotCorrupt, tag, err)
	}
	payload := buf.Bytes()
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: section %q CRC %08x, want %08x", ErrSnapshotCorrupt, tag, got, sum)
	}
	return payload, nil
}

// Close verifies the stream ends exactly after the last section.
// io.ReadFull (rather than one Read call) so readers that legally return
// (0, nil) cannot smuggle trailing bytes past the check.
func (sr *Reader) Close() error {
	var b [1]byte
	switch _, err := io.ReadFull(sr.r, b[:]); err {
	case io.EOF:
		return nil
	case nil:
		return fmt.Errorf("%w: trailing bytes after final section", ErrSnapshotCorrupt)
	default:
		return fmt.Errorf("%w: reading stream tail: %v", ErrSnapshotCorrupt, err)
	}
}

// Enc builds a section payload from primitive values. The zero value is
// ready to use; Reset reuses the backing buffer across sections.
type Enc struct{ buf []byte }

// Reset empties the encoder, keeping its capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Data returns the encoded payload (valid until the next Reset).
func (e *Enc) Data() []byte { return e.buf }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends one byte: 1 for true, 0 for false.
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// U64s appends a length-prefixed uint64 slice.
func (e *Enc) U64s(v []uint64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Binary appends a length-prefixed encoding/binary little-endian rendering
// of v — for fixed-size stats structs made purely of unsigned integers.
func (e *Enc) Binary(v any) {
	var b bytes.Buffer
	if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
		// Fixed-size structs of unsigned integers never fail; anything else
		// is a programming error at the encode site.
		panic(fmt.Sprintf("snapshot: unencodable value %T: %v", v, err))
	}
	e.Bytes(b.Bytes())
}

// Dec decodes a section payload written by Enc. Decode errors are sticky:
// after the first failure every accessor returns zero values and Err/Finish
// report ErrSnapshotCorrupt. Slice decoders bound allocations by the bytes
// actually present, so corrupt length prefixes cannot force huge
// allocations.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a section payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCorrupt}, args...)...)
	}
}

// Failf records a structural decode failure (wrapping ErrSnapshotCorrupt)
// and returns it — for component decoders that detect inconsistencies the
// primitive accessors cannot, like geometry mismatches.
func (d *Dec) Failf(format string, args ...any) error {
	d.fail(format, args...)
	return d.err
}

// Remaining returns the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Err returns the first decode failure, if any.
func (d *Dec) Err() error { return d.err }

// Finish returns the first decode failure, or ErrSnapshotCorrupt if the
// payload has undecoded trailing bytes.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrSnapshotCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// U64 decodes a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("short payload reading uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 decodes a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 decodes a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool decodes one byte; any value other than 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("short payload reading bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bool byte %#x", b)
		return false
	}
	return b == 1
}

// U64s decodes a length-prefixed uint64 slice.
func (d *Dec) U64s() []uint64 {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()/8) {
		d.fail("uint64 slice length %d exceeds remaining payload", n)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// U64sInto decodes a length-prefixed uint64 slice into dst, requiring the
// encoded length to match exactly — the restore-in-place form that both
// avoids allocation and enforces geometry.
func (d *Dec) U64sInto(dst []uint64) {
	n := d.U64()
	if d.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		d.fail("uint64 slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = d.U64()
	}
}

// Bytes decodes a length-prefixed byte slice as a view into the payload.
func (d *Dec) Bytes() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("byte slice length %d exceeds remaining payload", n)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// String decodes a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Binary decodes a length-prefixed encoding/binary rendering into v, which
// must be a pointer to the same fixed-size type the Enc.Binary site used.
func (d *Dec) Binary(v any) {
	b := d.Bytes()
	if d.err != nil {
		return
	}
	if err := binary.Read(bytes.NewReader(b), binary.LittleEndian, v); err != nil {
		d.fail("binary payload for %T: %v", v, err)
		return
	}
	if int(binary.Size(v)) != len(b) {
		d.fail("binary payload for %T: %d bytes, want %d", v, len(b), binary.Size(v))
	}
}
