package snapshot

import (
	"os"
	"path/filepath"
)

// WriteFileDurable replaces path atomically and durably: write to a
// sibling tmp file, fsync it, rename over the target, then fsync the
// directory so the rename itself survives power loss — tmp+rename alone
// only protects against process crashes, not a torn page cache. It is the
// one write path for every crash-surviving artifact: session checkpoints
// and flight-recorder dumps.
func WriteFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}
