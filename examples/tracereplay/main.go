// Trace record/replay: capture a workload's access stream once, then drive
// bit-identical streams through different secure-memory configurations —
// the cross-configuration methodology Pin traces serve in the paper.
package main

import (
	"bytes"
	"fmt"

	"rmcc"
	"rmcc/internal/trace"
)

func main() {
	// 1. Record half a million accesses of BFS.
	w, ok := rmcc.WorkloadByName(rmcc.SizeSmall, 11, "BFS")
	if !ok {
		panic("BFS missing")
	}
	var buf bytes.Buffer
	n, err := trace.Record(w, 11, 500_000, &buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recorded %d BFS accesses: %.1f KB (%.2f bytes/access)\n\n",
		n, float64(buf.Len())/1024, float64(buf.Len())/float64(n))

	// 2. Replay the identical stream under three protection modes.
	fmt.Printf("%-12s %14s %16s %14s\n", "mode", "ctr miss", "memo hit(miss)", "traffic")
	for _, mode := range []rmcc.Mode{rmcc.ModeNonSecure, rmcc.ModeBaseline, rmcc.ModeRMCC} {
		rep, err := trace.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			panic(err)
		}
		cfg := rmcc.DefaultLifetimeConfig(rmcc.DefaultEngineConfig(mode, rmcc.SchemeMorphable))
		cfg.MaxAccesses = n
		res := rmcc.RunLifetime(rep, cfg)
		fmt.Printf("%-12s %13.1f%% %15.1f%% %14d\n",
			mode, 100*res.Engine.CtrMissRate(),
			100*res.Engine.MemoHitRateOnMisses(), res.Engine.TotalTraffic())
	}
	fmt.Println("\nidentical inputs, so the traffic differences are purely the")
	fmt.Println("metadata cost of each protection level — the paper's comparison.")
}
