// Graph analytics under secure memory: the paper's motivating scenario.
// Runs two GraphBig-style kernels (BFS and pageRank) through the lifetime
// simulator under Morphable Counters with and without RMCC, and prints the
// counter-miss and memoization picture side by side.
package main

import (
	"fmt"

	"rmcc"
)

func main() {
	const seed = 42
	const accesses = 2_000_000

	fmt.Println("irregular graph analytics vs the counter cache")
	fmt.Println("(workload footprints far exceed the 32KB counter cache's reach)")
	fmt.Println()
	fmt.Printf("%-12s %14s %16s %16s %14s\n",
		"kernel", "ctr miss rate", "memo hit (miss)", "accelerated", "cover/value")

	for _, name := range []string{"BFS", "pageRank", "connectedComp", "canneal"} {
		// Baseline Morphable: how often do counter misses stall AES?
		wBase, ok := rmcc.WorkloadByName(rmcc.SizeSmall, seed, name)
		if !ok {
			panic("unknown workload " + name)
		}
		baseCfg := rmcc.DefaultLifetimeConfig(
			rmcc.DefaultEngineConfig(rmcc.ModeBaseline, rmcc.SchemeMorphable))
		baseCfg.MaxAccesses = accesses
		base := rmcc.RunLifetime(wBase, baseCfg)

		// RMCC: same stream, memoization on.
		wRMCC, _ := rmcc.WorkloadByName(rmcc.SizeSmall, seed, name)
		rmCfg := rmcc.DefaultLifetimeConfig(
			rmcc.DefaultEngineConfig(rmcc.ModeRMCC, rmcc.SchemeMorphable))
		rmCfg.MaxAccesses = accesses
		// Scaled epochs so the adaptive machinery cycles in a short demo.
		rmCfg.Engine.L0Table.EpochAccesses = 100_000
		rmCfg.Engine.L1Table.EpochAccesses = 100_000
		rmCfg.Engine.L0Table.OverMaxThreshold = 512
		rmCfg.Engine.L1Table.OverMaxThreshold = 512
		rm := rmcc.RunLifetime(wRMCC, rmCfg)

		fmt.Printf("%-12s %13.1f%% %15.1f%% %15.1f%% %14.0f\n",
			name,
			100*base.Engine.CtrMissRate(),
			100*rm.Engine.MemoHitRateOnMisses(),
			100*rm.Engine.AcceleratedRate(),
			rm.CoveragePerValue)
	}

	fmt.Println()
	fmt.Println("reading the table: a high counter-miss rate exposes the 15ns AES on")
	fmt.Println("every miss; RMCC's memoization accelerates the covered fraction, and")
	fmt.Println("each memoized counter value covers thousands of blocks (Figure 15).")
}
