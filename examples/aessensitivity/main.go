// AES-latency sensitivity (the paper's Figure 17 in miniature): run the
// detailed timing simulator on canneal under Morphable and RMCC at both
// 15 ns (AES-128) and 22 ns (AES-256) latencies and report the speedup.
package main

import (
	"fmt"

	"rmcc"
)

func run(mode rmcc.Mode, aesNS int64, seed uint64) rmcc.DetailedResult {
	w, ok := rmcc.WorkloadByName(rmcc.SizeSmall, seed, "canneal")
	if !ok {
		panic("canneal missing")
	}
	cfg := rmcc.DefaultDetailedConfig(rmcc.DefaultEngineConfig(mode, rmcc.SchemeMorphable))
	cfg.AESLat = aesNS * 1000 // ns -> ps
	cfg.LLC.SizeBytes = 2 << 20
	cfg.WarmupAccesses = 150_000
	cfg.MeasureAccesses = 500_000
	cfg.Engine.L0Table.EpochAccesses = 100_000
	cfg.Engine.L1Table.EpochAccesses = 100_000
	cfg.Engine.L0Table.OverMaxThreshold = 512
	cfg.Engine.L1Table.OverMaxThreshold = 512
	cfg.Seed = seed
	return rmcc.RunDetailed(w, cfg)
}

func main() {
	const seed = 7
	fmt.Println("RMCC's benefit stems from hiding AES latency, so a slower cipher")
	fmt.Println("(AES-256, quantum-safe) widens the gap over Morphable (Figure 17).")
	fmt.Println()
	fmt.Printf("%8s %18s %14s %18s %12s\n", "AES", "Morphable IPC", "RMCC IPC", "RMCC miss lat", "speedup")
	for _, aes := range []int64{15, 22} {
		mo := run(rmcc.ModeBaseline, aes, seed)
		rm := run(rmcc.ModeRMCC, aes, seed)
		fmt.Printf("%6dns %18.3f %14.3f %16.1fns %11.1f%%\n",
			aes, mo.IPC, rm.IPC, rm.AvgMissLatencyNS, 100*(rm.IPC/mo.IPC-1))
	}
}
