// Quickstart: stand up a secure memory controller with RMCC, push a few
// accesses through it, and watch the memoization table at work.
package main

import (
	"fmt"

	"rmcc"
)

func main() {
	// 64 MiB of protected memory under Morphable Counters with RMCC.
	// Content tracking is on: every simulated read really decrypts and
	// MAC-verifies against ground truth. We boot a *fresh* system (all
	// counters zero) so the table's boot state — values 0..127 memoized —
	// is visible; long-lived systems converge the same way via the
	// self-reinforcing update (see examples/graphanalytics).
	cfg := rmcc.DefaultEngineConfig(rmcc.ModeRMCC, rmcc.SchemeMorphable)
	cfg.MemBytes = 64 << 20
	cfg.TrackContents = true
	cfg.RandomizeInit = false
	mc := rmcc.NewControllerWithConfig(cfg)

	fmt.Println("== writes: memoization-aware counter update ==")
	for i := 0; i < 4; i++ {
		addr := uint64(i) * 64
		mc.Write(addr)
		blk := mc.Store().DataBlockIndex(addr)
		ctr := mc.Store().DataCounter(blk)
		fmt.Printf("write block %d -> counter %d (memoized: %v)\n",
			blk, ctr, mc.L0Table().Contains(ctr))
	}

	fmt.Println("\n== reads: counter misses vs memoization ==")
	// Far-apart addresses: each is a fresh counter block (counter cache
	// miss), but their counter values hit the memoization table, so the
	// MC skips the serial AES on the critical path.
	for i := 0; i < 4; i++ {
		addr := uint64(i) * (8 << 10) * 64 // one per 512 KiB
		out := mc.Read(addr)
		fmt.Printf("read %#7x: ctrCacheHit=%-5v chainFetches=%d memoHit=%-5v accelerated=%v\n",
			addr, out.CtrCacheHit, len(out.Chain), out.L0MemoHit, out.Accelerated)
	}

	s := mc.Stats()
	fmt.Println("\n== controller stats ==")
	fmt.Printf("reads=%d writes=%d ctrMisses=%d acceleratedMisses=%d\n",
		s.Reads, s.Writes, s.CtrL0Misses, s.AcceleratedMisses)
	fmt.Printf("decrypt mismatches=%d integrity failures=%d (must both be 0)\n",
		s.DecryptMismatches, s.IntegrityFailures)

	fmt.Println("\n== tamper detection ==")
	victim := mc.Store().DataBlockIndex(0)
	mc.TamperCiphertext(victim)
	mc.Read(0)
	fmt.Printf("after tampering block %d: integrity failures=%d (detected!)\n",
		victim, mc.Stats().IntegrityFailures)
}
