// Security demo: exercises the integrity machinery and the §IV-D analysis
// of the RMCC OTP construction — tamper detection, replay detection, and
// the NIST-randomness comparison between RMCC OTPs and raw AES output.
package main

import (
	"fmt"

	"rmcc"
	"rmcc/internal/crypto/otp"
	"rmcc/internal/crypto/randtest"
	"rmcc/internal/rng"
)

func main() {
	fmt.Println("== 1. tamper detection ==")
	mc := rmcc.NewController(rmcc.ModeRMCC, rmcc.SchemeMorphable, 16<<20)
	mc.Read(0x4000) // installs contents
	victim := mc.Store().DataBlockIndex(0x4000)
	mc.TamperCiphertext(victim)
	mc.Read(0x4000)
	fmt.Printf("flipped bits in DRAM ciphertext: integrity failures = %d (want > 0)\n",
		mc.Stats().IntegrityFailures)

	fmt.Println("\n== 2. replay detection ==")
	mc2 := rmcc.NewController(rmcc.ModeRMCC, rmcc.SchemeMorphable, 16<<20)
	mc2.Read(0x8000)
	blk := mc2.Store().DataBlockIndex(0x8000)
	oldCT, oldMAC := mc2.SnapshotCiphertext(blk)
	mc2.Write(0x8000) // counter advances; fresh ciphertext
	mc2.ReplayOldCiphertext(blk, oldCT, oldMAC)
	mc2.Read(0x8000)
	fmt.Printf("replayed stale (ciphertext, MAC): integrity failures = %d (want > 0)\n",
		mc2.Stats().IntegrityFailures)

	fmt.Println("\n== 3. OTP randomness (paper §IV-D1) ==")
	// RMCC's OTP is a truncated carry-less product of two AES outputs;
	// the paper validates that it passes NIST randomness tests at the same
	// rate as the AES streams themselves.
	unit := otp.MustNewUnit(otp.DeriveKeys([16]byte{0x42}, 16))
	r := rng.New(1)
	const samples = 4096
	otpW := make([]uint64, 0, 2*samples)
	aesW := make([]uint64, 0, 2*samples)
	for i := 0; i < samples; i++ {
		cr := unit.CounterOnly(r.Uint64())
		ar := unit.AddressOnlyEnc(r.Uint64()&^63, 0)
		o := otp.Combine(cr.Enc, ar)
		otpW = append(otpW, o.Hi, o.Lo)
		aesW = append(aesW, cr.Enc.Hi, cr.Enc.Lo)
	}
	fmt.Println("RMCC OTP stream:")
	for _, res := range randtest.Battery(randtest.FromUint64s(otpW)) {
		fmt.Println("  ", res)
	}
	fmt.Println("raw counter-only AES stream:")
	for _, res := range randtest.Battery(randtest.FromUint64s(aesW)) {
		fmt.Println("  ", res)
	}
	fmt.Printf("pass rates: OTP %.0f%%, AES %.0f%%\n",
		100*randtest.PassRate(randtest.FromUint64s(otpW)),
		100*randtest.PassRate(randtest.FromUint64s(aesW)))
}
